"""§6.2 network-aware indexes as access paths for the social stage.

The paper's ``IL^u_k`` structures (:class:`~repro.indexing.inverted.
ExactUserIndex`, :class:`~repro.indexing.clustered.ClusteredIndex`) store
``score_k(i, u) = f(network(u) ∩ taggers(i, k))``.  Friend-based
endorsement in the *uniform-weight* regime — an empty-keyword query, where
every friend's topical fit is 1.0 — is exactly that score with
``network(u)`` = the user's outgoing ``connect`` neighbours, ``taggers``
= the actors of each item, one pseudo-tag for "acted at all", and
``f = count``.  :class:`EndorsementData` extracts that reading so the
physical compiler can lower the friend-endorsement probe onto either index
structure with record-identical results.

Directionality note: the tagging-site :class:`~repro.indexing.scores.
TaggingData` treats the network as symmetric; friend selection follows
*outgoing* ``connect`` links only.  The two maps an index needs are
therefore transposes of each other — ``basis[u]`` (who u follows, used at
score time) vs. ``network[t]`` (who observes t, used at build time) — and
this class maintains both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Id, SocialContentGraph
from repro.indexing.clustered import ClusteredIndex
from repro.indexing.clustering import Clustering, network_clustering
from repro.indexing.inverted import ExactUserIndex
from repro.indexing.scores import ScoreF, TaggingData, f_count

#: The single pseudo-tag under which every activity is indexed.
ACT_TAG = "__act__"

#: Default clustering tightness for the compressed variant.
DEFAULT_CLUSTER_THETA = 0.3


@dataclass
class EndorsementData(TaggingData):
    """Directed activity/network accessors for endorsement indexing.

    ``network`` holds the *observer* transpose (who follows each actor —
    what index construction walks); ``basis`` holds each user's own
    outgoing friend set (what exact rescoring intersects).
    """

    basis: dict[Id, set] = field(default_factory=dict)
    #: True when some (user, item) pair carries more than one ``act``
    #: link — the per-link weighted probe then diverges from the
    #: set-semantics index score, so the index path must not serve it.
    has_multi_act: bool = False

    def score_tag(
        self, item: Id, user: Id, tag: str, f: ScoreF = f_count
    ) -> float:
        """score(i, u) against the user's *outgoing* friend basis."""
        taggers = self.taggers.get((item, tag))
        if not taggers:
            return 0.0
        return f(self.basis.get(user, set()) & taggers)

    @classmethod
    def from_graph(
        cls,
        graph: SocialContentGraph,
        connect_type: str = "connect",
        act_type: str = "act",
    ) -> "EndorsementData":
        """One-pass extraction of the endorsement reading of a graph."""
        data = cls()
        users: set[Id] = set()
        items: set[Id] = set()
        seen_acts: set[tuple[Id, Id]] = set()
        for node in graph.nodes():
            if node.has_type("user"):
                users.add(node.id)
            elif node.has_type("item"):
                items.add(node.id)
        for link in graph.links():
            if link.has_type(connect_type):
                data.basis.setdefault(link.src, set()).add(link.tgt)
                data.network.setdefault(link.tgt, set()).add(link.src)
                users.add(link.src)
                users.add(link.tgt)
            if link.has_type(act_type):
                key = (link.src, link.tgt)
                if key in seen_acts:
                    data.has_multi_act = True
                seen_acts.add(key)
                data.items.setdefault(link.src, set()).add(link.tgt)
                data.taggers.setdefault((link.tgt, ACT_TAG), set()).add(link.src)
                data.items_with_tag.setdefault(ACT_TAG, set()).add(link.tgt)
                users.add(link.src)
        data.users = sorted(users, key=repr)
        data.item_ids = sorted(items, key=repr)
        data.tag_vocab = [ACT_TAG] if data.taggers else []
        return data


def exact_endorsement_index(graph: SocialContentGraph) -> ExactUserIndex:
    """Per-(pseudo-tag, user) exact endorsement lists over *graph*."""
    return ExactUserIndex(EndorsementData.from_graph(graph))


def clustered_endorsement_index(
    graph: SocialContentGraph,
    theta: float = DEFAULT_CLUSTER_THETA,
    clustering: Clustering | None = None,
) -> ClusteredIndex:
    """Cluster-compressed endorsement lists (Eq 1 upper bounds)."""
    data = EndorsementData.from_graph(graph)
    return ClusteredIndex(
        data, clustering if clustering is not None
        else network_clustering(data, theta)
    )


def endorsement_entries(index: ExactUserIndex | ClusteredIndex,
                        user: Id) -> list[tuple[Id, float]] | None:
    """The user's endorsement posting list, exact-scored.

    For the exact index this is a stored list; for the clustered index the
    upper-bound list of the user's cluster is exact-rescored entry by
    entry (the paper's query-time overhead).  Returns ``None`` when the
    index cannot answer exactly (multi-activity pairs, uncovered user) —
    the caller falls back to the probe path.
    """
    data = index.data
    if getattr(data, "has_multi_act", False):
        return None
    if isinstance(index, ClusteredIndex):
        cluster = index.clustering.cluster_of.get(user)
        if cluster is None:
            # An unclustered user endorses nothing only if it has no basis.
            return [] if not data.basis.get(user) else None
        entries = []
        for item, _bound in index.lists.get((ACT_TAG, cluster), ()):
            exact = data.score(item, user, [ACT_TAG])
            if exact > 0:
                entries.append((item, exact))
        return entries
    return list(index.lists.get((ACT_TAG, user), ()))

"""Semantic relevance: scoping + scoring candidates for a query.

The first half of the paper's two-relevance vision: "The former [semantic
relevance] scopes the discovery to information relevant to John's current
needs as expressed by him" (§2.1).  Scoping and scoring are expressed with
the algebra's Node Selection over the item sub-population, using the
tf-idf scorer by default (the alternative to "no ranking mechanism (e.g.,
tf-idf measure) based on pure semantic relevance can differentiate them" is
precisely that the scores barely differentiate — which is what the social
side then breaks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Id, SocialContentGraph, TfIdfScorer, select_nodes
from repro.core.scoring import ScoringFunction
from repro.discovery.query import Query


@dataclass
class SemanticResult:
    """Scored semantic candidates for one query."""

    scores: dict[Id, float]

    @property
    def max_score(self) -> float:
        """Largest raw score (0 when no candidates)."""
        return max(self.scores.values(), default=0.0)

    def normalized(self) -> dict[Id, float]:
        """Scores scaled into [0, 1] (max-normalised)."""
        top = self.max_score
        if top <= 0:
            return {i: 0.0 for i in self.scores}
        return {i: s / top for i, s in self.scores.items()}


class SemanticRelevance:
    """Computes the semantically relevant candidate set of a query."""

    def __init__(
        self,
        graph: SocialContentGraph,
        scorer: ScoringFunction | None = None,
        item_type: str = "item",
    ):
        self.graph = graph
        self.item_type = item_type
        self._custom_scorer = scorer
        self._scorer: ScoringFunction | None = scorer
        #: corpus passes performed so far — the session engine asserts warm
        #: queries keep this at one.
        self.builds = 0

    @property
    def scorer(self) -> ScoringFunction:
        """The scoring function S — corpus-aware tf-idf built lazily.

        Built on first use and cached until :meth:`invalidate`, so a warm
        session pays the corpus pass once across queries.
        """
        if self._scorer is None:
            self._scorer = TfIdfScorer(
                list(self.graph.nodes_of_type(self.item_type))
            )
            self.builds += 1
        return self._scorer

    def invalidate(self, graph: SocialContentGraph | None = None) -> None:
        """Point at a (possibly new) graph and drop the cached corpus state.

        A caller-supplied scorer is kept — its corpus is the caller's
        responsibility; only the default tf-idf is corpus-derived.
        """
        if graph is not None:
            self.graph = graph
        if self._custom_scorer is None:
            self._scorer = None

    def candidates(self, query: Query) -> SemanticResult:
        """Scope + score: σN⟨C,S⟩ over the items.

        Empty queries (recommendation mode) return every item with a
        neutral score of 0 — social relevance then decides alone (§4).
        """
        if query.is_empty:
            return SemanticResult(
                scores={n.id: 0.0 for n in self.graph.nodes_of_type(self.item_type)}
            )
        condition = query.scope_condition(default_type=self.item_type)
        selected = select_nodes(self.graph, condition, scorer=self.scorer)
        return SemanticResult(
            scores={n.id: (n.score or 0.0) for n in selected.nodes()}
        )

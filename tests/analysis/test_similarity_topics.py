"""Tests for derived similarity links, topic derivation, and the analyzer."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ContentAnalyzer,
    derive_topics,
    item_documents,
    item_similarity_links,
    jaccard,
    cosine,
    user_similarity_links,
)
from repro.errors import DiscoveryError
from repro.workloads import TravelSiteConfig, build_travel_site


class TestMeasures:
    def test_jaccard(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 0.0
        assert jaccard({1}, {1}) == 1.0

    def test_cosine(self):
        assert cosine({"a": 1.0}, {"a": 1.0}) == pytest.approx(1.0)
        assert cosine({"a": 1.0}, {"b": 1.0}) == 0.0
        assert cosine({}, {"a": 1.0}) == 0.0


class TestUserSimilarity:
    def test_items_basis(self, tiny_travel_graph):
        derived = user_similarity_links(tiny_travel_graph, threshold=0.6,
                                        basis="items")
        # John{d1,d3} vs Cat{d1,d3}: Jaccard 1.0; Ann 2/3; Bob 1/4.
        assert derived.has_link("sim:user_similarity:items:101->104")
        assert derived.has_link("sim:user_similarity:items:101->102")
        assert not derived.has_link("sim:user_similarity:items:101->103")

    def test_links_are_symmetric(self, tiny_travel_graph):
        derived = user_similarity_links(tiny_travel_graph, threshold=0.6)
        for link in list(derived.links()):
            reverse = f"sim:user_similarity:items:{link.tgt}->{link.src}"
            assert derived.has_link(reverse)

    def test_sim_value_stored(self, tiny_travel_graph):
        derived = user_similarity_links(tiny_travel_graph, threshold=0.6)
        link = derived.link("sim:user_similarity:items:101->104")
        assert link.value("sim") == pytest.approx(1.0)
        assert link.has_type("match")

    def test_network_basis(self, tiny_travel_graph):
        derived = user_similarity_links(tiny_travel_graph, threshold=0.3,
                                        basis="network")
        # network(John)={102,103}; network(Ann)={101,104}; network(Bob)={101};
        # network(Cat)={102}.  No pair reaches 0.3 except none — check shape.
        for link in derived.links():
            assert link.has_type("sim_user")

    def test_unknown_basis(self, tiny_travel_graph):
        with pytest.raises(ValueError):
            user_similarity_links(tiny_travel_graph, basis="astrology")


class TestItemSimilarity:
    def test_taggers_basis(self, tiny_travel_graph):
        derived = item_similarity_links(tiny_travel_graph, threshold=0.9)
        # d1 taggers {101,102,103,104}; d3 taggers {101,102,104}: 3/4 < 0.9.
        assert not derived.has_link("sim:item_similarity:d1->d3")
        lower = item_similarity_links(tiny_travel_graph, threshold=0.7)
        assert lower.has_link("sim:item_similarity:d1->d3")


class TestTopicDerivation:
    @pytest.fixture(scope="class")
    def travel(self):
        return build_travel_site(TravelSiteConfig(
            num_cities=4, attractions_per_city=6, num_background_users=30,
            seed=3,
        ))

    def test_item_documents(self, travel):
        items, documents = item_documents(travel.graph)
        assert len(items) == len(documents)
        assert all(isinstance(d, list) for d in documents)

    def test_topics_materialised(self, travel):
        derivation = derive_topics(travel.graph, n_topics=4, n_iterations=30,
                                   seed=1)
        topics = [n for n in derivation.graph.nodes() if n.has_type("topic")]
        assert len(topics) == 4
        belongs = [l for l in derivation.graph.links() if l.has_type("belong")]
        assert belongs
        for link in belongs:
            assert 0.0 <= float(link.value("prob")) <= 1.0

    def test_provenance_marked(self, travel):
        derivation = derive_topics(travel.graph, n_topics=3, n_iterations=20,
                                   seed=1)
        for node in derivation.graph.nodes():
            if node.has_type("topic"):
                assert node.value("derived_by") == "lda"


class TestContentAnalyzer:
    def test_run_unions_derivations(self, tiny_travel_graph):
        analyzer = ContentAnalyzer(tiny_travel_graph)
        before_links = analyzer.graph.num_links
        run = analyzer.run("user_similarity")
        assert run.derived_links > 0
        assert analyzer.graph.num_links == before_links + run.derived_links

    def test_unknown_analysis(self, tiny_travel_graph):
        analyzer = ContentAnalyzer(tiny_travel_graph)
        with pytest.raises(DiscoveryError):
            analyzer.run("phrenology")

    def test_custom_registration(self, tiny_travel_graph):
        from repro.core import SocialContentGraph, Node

        analyzer = ContentAnalyzer(tiny_travel_graph)

        def custom(graph):
            out = SocialContentGraph()
            out.add_node(Node("custom:flag", type="topic", derived_by="custom"))
            return out

        analyzer.register("custom", custom)
        analyzer.run("custom")
        assert analyzer.graph.has_node("custom:flag")

    def test_run_log(self, tiny_travel_graph):
        analyzer = ContentAnalyzer(tiny_travel_graph)
        analyzer.run("user_similarity")
        analyzer.run("item_similarity")
        assert [r.name for r in analyzer.run_log] == [
            "user_similarity", "item_similarity"
        ]

    def test_association_rules_create_match_links(self, tiny_travel_graph):
        analyzer = ContentAnalyzer(tiny_travel_graph)
        analyzer.run("association_rules")
        assoc = [l for l in analyzer.graph.links() if l.has_type("assoc")]
        assert assoc  # d3 => d1 style rules exist in the tiny graph
        for link in assoc:
            assert link.value("confidence") is not None

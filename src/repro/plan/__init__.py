"""Physical planning: logical → physical compilation, cost, cache, EXPLAIN.

The paper positions the social content algebra as "the foundation for the
optimization of" analysis and discovery; this package is where that
foundation carries weight.  Every serving query — ``Session.run``,
``InformationDiscoverer.discover_query`` — builds a logical
:class:`~repro.core.expr.Expr` plan and executes it through here:

* :mod:`repro.plan.compiler` — rule-optimize, then lower each logical
  operator to a physical one, choosing access paths (semantic-index
  keyword selection vs. full scan; adjacency probe vs. the §6.2
  network-aware endorsement indexes for the social stage) and — when the
  request leaves it open — the social strategy itself, from a
  :class:`CostModel` fed by :class:`~repro.core.stats.GraphStats`;
* :mod:`repro.plan.physical` — the executable operators, self-profiling
  with per-operator actual cardinalities;
* :mod:`repro.plan.cache` — a generation-stamped LRU of compiled plans,
  invalidated wholesale by any graph change;
* :mod:`repro.plan.planner` — the per-session service tying the three
  together;
* :mod:`repro.plan.explain` — the frozen EXPLAIN view responses carry.

New physical strategies (more indexes, parallel operators, sharded scans)
slot in as new :class:`PhysicalOp` subclasses plus a lowering rule — no
serving-path rewrite required.
"""

from repro.plan.cache import (
    CacheStats,
    PlanCache,
    ResultMemo,
    SharedPlanCache,
    shared_plan_cache,
)
from repro.plan.columnar import (
    ColumnarShardView,
    ScanProgram,
    VectorCondition,
    run_scan_program,
)
from repro.plan.compiler import (
    ACCESS_MODES,
    AccessDecision,
    CostModel,
    IndexBinding,
    StrategyDecision,
    compile_plan,
)
from repro.plan.explain import PlanExplain, explain_execution
from repro.plan.parallel import (
    ProcessBackend,
    ProcessPoolError,
    ProcessShardPool,
    WorkerPool,
    shared_worker_pool,
)
from repro.plan.physical import (
    ATTR_INDEX,
    INDEX,
    NETWORK_CLUSTERED,
    NETWORK_EXACT,
    SCAN,
    SHARDED,
    AttrIndexScanOp,
    EndorsementMergeOp,
    ExecContext,
    FusedSocialCombineOp,
    GroupedAggregationOp,
    IndexKeywordScanOp,
    InputOp,
    LiteralOp,
    OperatorProfile,
    PhysicalOp,
    PhysicalPlan,
    PlanExecution,
    ScanOp,
    SemiJoinProbeOp,
    ShardProfile,
    ShardView,
    ShardedLinkScanOp,
    ShardedScanOp,
)
from repro.plan.planner import BASE_GRAPH, PARALLEL_MODES, QueryPlanner

__all__ = [
    "ACCESS_MODES",
    "ATTR_INDEX",
    "AccessDecision",
    "AttrIndexScanOp",
    "BASE_GRAPH",
    "CacheStats",
    "ColumnarShardView",
    "CostModel",
    "EndorsementMergeOp",
    "ExecContext",
    "FusedSocialCombineOp",
    "GroupedAggregationOp",
    "INDEX",
    "IndexBinding",
    "IndexKeywordScanOp",
    "InputOp",
    "LiteralOp",
    "NETWORK_CLUSTERED",
    "NETWORK_EXACT",
    "OperatorProfile",
    "PARALLEL_MODES",
    "PhysicalOp",
    "PhysicalPlan",
    "PlanCache",
    "PlanExecution",
    "ProcessBackend",
    "ProcessPoolError",
    "ProcessShardPool",
    "PlanExplain",
    "QueryPlanner",
    "ResultMemo",
    "SCAN",
    "SHARDED",
    "ScanOp",
    "ScanProgram",
    "SemiJoinProbeOp",
    "SharedPlanCache",
    "ShardProfile",
    "ShardView",
    "ShardedLinkScanOp",
    "ShardedScanOp",
    "StrategyDecision",
    "VectorCondition",
    "WorkerPool",
    "compile_plan",
    "explain_execution",
    "run_scan_program",
    "shared_plan_cache",
    "shared_worker_pool",
]

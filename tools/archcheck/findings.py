"""Finding records and the module model shared by every rule family.

A finding is *anchored* twice: ``line`` for humans jumping to the code,
and a line-free :meth:`Finding.fingerprint` for the baseline file —
moving code around must not churn grandfathered suppressions, only
changing the violation itself should.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str          #: short rule code, e.g. ``L001``
    path: str          #: repo-relative posix path of the file
    line: int          #: 1-based line of the offending node
    symbol: str        #: enclosing qualname (``Class.method``) or package
    message: str       #: human-readable description
    detail: str = ""   #: stable discriminator when one symbol can host
                       #: several findings of the same rule

    def fingerprint(self) -> str:
        """Line-free identity used by the baseline suppression file."""
        return f"{self.rule}:{self.path}:{self.symbol}:{self.detail}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} [{self.symbol}] "
            f"{self.message}"
        )


@dataclass
class Module:
    """One parsed source file with the naming both rule layers need."""

    path: Path          #: filesystem path
    rel_path: str       #: repo-relative posix path (finding anchor)
    name: str           #: dotted module name, e.g. ``repro.plan.cache``
    tree: ast.Module = field(repr=False)

    @property
    def package(self) -> str:
        """First dotted component below the layer root (see collector)."""
        return self.name.split(".", 1)[0]


def collect_modules(
    root: Path, repo_root: Path, layer_root: str = ""
) -> list[Module]:
    """Parse every ``.py`` under *root* into :class:`Module` records.

    Module names are dotted paths relative to *root*; when the tree is a
    ``src`` layout and *layer_root* names the top package (``"repro"``),
    that leading component is stripped so :attr:`Module.package` yields
    the layer name (``plan``, ``core``, …).  The top package's own
    modules (``repro/__init__.py``, ``repro/socialscope.py``) keep the
    root as their package so the DAG can constrain them too.
    """
    modules: list[Module] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1] or [parts[0]]
        dotted = ".".join(parts)
        if layer_root and dotted == layer_root:
            dotted = layer_root  # the root package's __init__ itself
        elif layer_root and dotted.startswith(layer_root + "."):
            remainder = dotted[len(layer_root) + 1 :]
            # top-level modules of the root package (errors.py,
            # socialscope.py) become their own single-module packages
            dotted = remainder
        try:
            rel_to_repo = path.relative_to(repo_root)
        except ValueError:  # scanning outside the repo (tests, tmpdirs)
            rel_to_repo = path
        modules.append(
            Module(
                path=path,
                rel_path=rel_to_repo.as_posix(),
                name=dotted,
                tree=ast.parse(path.read_text(encoding="utf-8"),
                               filename=str(path)),
            )
        )
    return modules

"""Aggregate-function classes SAF and NAF (paper §5.4, Definitions 7-8).

Definition 7 (Set Aggregate Functions, SAF)::

    A is in SAF iff it is of the form {$x | ℓ ∈ L & ℓ.att = $x}

i.e. it extracts the values of an attribute from every link in the input set
and forms the output set of scalars.  :class:`SetAgg` realises this.

Definition 8 (Numerical Aggregate Functions, NAF) builds an inductive class:

* the arithmetic operations +, −, ×, ÷;
* the constant functions **0** and **1**;
* summation Σ_{x∈X} f(x) and product Π_{x∈X} f(x) for f ∈ NAF;
* closure under composition.

:class:`Naf` and its combinators mirror that construction literally, so
``COUNT(X) ::= Σ_{x∈X} 1(x)`` is written ``Sum(One())`` — exactly the
paper's definition.  SUM/AVG are likewise built compositionally; MIN/MAX
(whose NAF construction the paper says is "omitted for clarity") are
provided as direct members of the union class AF.

Aggregation operators accept anything in **AF = SAF ∪ NAF** plus two
pragmatic extensions used by the paper's own Example 5:

* :class:`First` — "retains the value of sim from any of the input links";
* :class:`AttrMap` — an A that returns a *mapping* of several destination
  attributes at once ("assigns the constant string value 'match' to the
  destination attribute type and retains the value of sim").
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Mapping, Sequence, Union

from repro.core.graph import Link
from repro.errors import AggregationError

#: What an aggregation function may return: a scalar, a set of scalars
#: (stored as a multi-valued attribute), or a mapping of attributes.
AggResult = Union[float, int, str, bool, tuple, Mapping[str, Any]]


class AggregateFunction:
    """Base class for everything in AF: callable on a sequence of links."""

    def __call__(self, links: Sequence[Link]) -> AggResult:
        raise NotImplementedError


def link_values(link: Link, att: str) -> tuple:
    """Values of *att* on a link, treating ``src``/``tgt``/``id`` as
    pseudo-attributes.

    Example 5 step 2 "collects the set of destinations that John has
    visited" — i.e. the *targets* of his visit links — so aggregate
    functions must be able to reach a link's endpoints, not just its
    stored attributes.
    """
    if att == "src":
        return (link.src,)
    if att == "tgt":
        return (link.tgt,)
    if att == "id":
        return (link.id,)
    return link.values(att)


# ---------------------------------------------------------------------------
# SAF — Definition 7
# ---------------------------------------------------------------------------


class SetAgg(AggregateFunction):
    """``{$x | ℓ ∈ L & ℓ.att = $x}`` — collect distinct attribute values.

    Multi-valued attributes bind ``$x`` to one value at a time, per the
    paper's variable-binding convention.  The output is a deterministic
    (sorted) tuple so that repeated aggregation runs agree bit-for-bit.

    >>> # the set of all distinct tags assigned by a user
    >>> tags_used = SetAgg('tags')
    """

    def __init__(self, att: str):
        self.att = att

    def __call__(self, links: Sequence[Link]) -> tuple:
        values = {value for link in links for value in link_values(link, self.att)}
        return tuple(sorted(values, key=repr))

    def __repr__(self) -> str:
        return f"SetAgg({self.att!r})"


# ---------------------------------------------------------------------------
# NAF — Definition 8 (inductive combinators)
# ---------------------------------------------------------------------------


class Naf:
    """A numerical aggregate expression; maps an input to a float.

    Inputs are either a single link (inside Σ/Π) or a collection of links
    (at the top level).  Combinators overload ``+ - * /`` so NAF expressions
    read like the paper's formulas::

        COUNT = Sum(One())
        AVG   = Sum(Attr('sim_sc')) / Sum(One())
    """

    def eval(self, x: Any) -> float:
        raise NotImplementedError

    def __call__(self, x: Any) -> float:
        return self.eval(x)

    # arithmetic closure -----------------------------------------------------

    def __add__(self, other: "Naf | float") -> "Naf":
        return BinOp("+", self, _as_naf(other))

    def __sub__(self, other: "Naf | float") -> "Naf":
        return BinOp("-", self, _as_naf(other))

    def __mul__(self, other: "Naf | float") -> "Naf":
        return BinOp("*", self, _as_naf(other))

    def __truediv__(self, other: "Naf | float") -> "Naf":
        return BinOp("/", self, _as_naf(other))

    def __radd__(self, other: float) -> "Naf":
        return BinOp("+", _as_naf(other), self)

    def __rsub__(self, other: float) -> "Naf":
        return BinOp("-", _as_naf(other), self)

    def __rmul__(self, other: float) -> "Naf":
        return BinOp("*", _as_naf(other), self)

    def __rtruediv__(self, other: float) -> "Naf":
        return BinOp("/", _as_naf(other), self)

    def compose(self, inner: "Naf") -> "Naf":
        """NAF is closed under composition: ``self ∘ inner``."""
        return Composed(self, inner)


def _as_naf(value: "Naf | float | int") -> Naf:
    if isinstance(value, Naf):
        return value
    return Const(float(value))


class Const(Naf):
    """A constant function.  The paper's base cases are 0 and 1
    (:class:`Zero`, :class:`One`); arbitrary constants arise anyway from
    arithmetic closure (e.g. 1+1), so we allow them directly."""

    def __init__(self, value: float):
        self.value = float(value)

    def eval(self, x: Any) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"{self.value:g}"


class Zero(Const):
    """The constant function 0 (Definition 8)."""

    def __init__(self) -> None:
        super().__init__(0.0)


class One(Const):
    """The constant function 1 (Definition 8)."""

    def __init__(self) -> None:
        super().__init__(1.0)


class Attr(Naf):
    """Reads a numeric attribute off a link (the scalar injection).

    Definition 8 quantifies over collections whose elements are fed to
    NAF functions; for link collections the natural scalarisation is an
    attribute read.  Missing attributes evaluate to *default*.
    """

    def __init__(self, att: str, default: float = 0.0):
        self.att = att
        self.default = float(default)

    def eval(self, x: Any) -> float:
        if isinstance(x, Link):
            values = link_values(x, self.att)
            if not values:
                return self.default
            try:
                return float(values[0])
            except (TypeError, ValueError):
                return self.default
        if isinstance(x, (int, float)):
            return float(x)
        raise AggregationError(f"Attr({self.att!r}) applied to {type(x).__name__}")

    def __repr__(self) -> str:
        return f"ℓ.{self.att}"


class Sum(Naf):
    """Σ_{x∈X} f(x) — summation over a collection (Definition 8)."""

    def __init__(self, f: Naf):
        self.f = f

    def eval(self, x: Any) -> float:
        if not isinstance(x, Iterable):
            raise AggregationError("Sum expects a collection")
        return float(sum(self.f.eval(item) for item in x))

    def __repr__(self) -> str:
        return f"Σ[{self.f!r}]"


class Prod(Naf):
    """Π_{x∈X} f(x) — product over a collection (Definition 8)."""

    def __init__(self, f: Naf):
        self.f = f

    def eval(self, x: Any) -> float:
        if not isinstance(x, Iterable):
            raise AggregationError("Prod expects a collection")
        result = 1.0
        for item in x:
            result *= self.f.eval(item)
        return result

    def __repr__(self) -> str:
        return f"Π[{self.f!r}]"


class BinOp(Naf):
    """Pointwise arithmetic on two NAF expressions (closure under + − × ÷).

    Division by zero yields 0.0 — aggregations over empty groups must not
    blow up (AVG of nothing is conventionally 0 here, and the operators only
    apply A to non-empty groups anyway).
    """

    _OPS: dict[str, Callable[[float, float], float]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b if b != 0 else 0.0,
    }

    def __init__(self, op: str, left: Naf, right: Naf):
        if op not in self._OPS:
            raise AggregationError(f"unknown NAF operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, x: Any) -> float:
        return self._OPS[self.op](self.left.eval(x), self.right.eval(x))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Composed(Naf):
    """``outer ∘ inner`` — NAF closure under composition."""

    def __init__(self, outer: Naf, inner: Naf):
        self.outer = outer
        self.inner = inner

    def eval(self, x: Any) -> float:
        return self.outer.eval(self.inner.eval(x))

    def __repr__(self) -> str:
        return f"({self.outer!r} ∘ {self.inner!r})"


class NumericAgg(AggregateFunction):
    """Adapter lifting a NAF expression into the operator-facing AF class."""

    def __init__(self, expr: Naf):
        self.expr = expr

    def __call__(self, links: Sequence[Link]) -> float:
        return self.expr.eval(links)

    def __repr__(self) -> str:
        return f"NumericAgg({self.expr!r})"


# ---------------------------------------------------------------------------
# Derived aggregates (the paper's COUNT construction and friends)
# ---------------------------------------------------------------------------


def count() -> NumericAgg:
    """``COUNT(X) ::= Σ_{x∈X} 1(x)`` — the paper's literal construction."""
    return NumericAgg(Sum(One()))


def total(att: str) -> NumericAgg:
    """SUM over a numeric link attribute: Σ ℓ.att."""
    return NumericAgg(Sum(Attr(att)))


def average(att: str) -> NumericAgg:
    """AVERAGE over a numeric link attribute: Σ ℓ.att ÷ Σ 1.

    This is the AVERAGE of Example 5 step 9.
    """
    return NumericAgg(Sum(Attr(att)) / Sum(One()))


class Min(AggregateFunction):
    """Minimum of a numeric attribute.  The paper notes MIN/MAX "can also
    be expressed [in NAF], although the details of the construction is
    omitted"; we provide them directly as members of AF."""

    def __init__(self, att: str, default: float = 0.0):
        self.att = att
        self.default = float(default)

    def __call__(self, links: Sequence[Link]) -> float:
        values = [
            float(v)
            for link in links
            for v in link.values(self.att)
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        return min(values) if values else self.default


class Max(AggregateFunction):
    """Maximum of a numeric attribute (see :class:`Min`)."""

    def __init__(self, att: str, default: float = 0.0):
        self.att = att
        self.default = float(default)

    def __call__(self, links: Sequence[Link]) -> float:
        values = [
            float(v)
            for link in links
            for v in link.values(self.att)
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        return max(values) if values else self.default


class First(AggregateFunction):
    """"Retains the value ... from any of the input links" (Example 5 step 6).

    Deterministic: returns the attribute of the link with the smallest
    ``repr``-ordered id.  The paper remarks this is well defined because all
    links in the group carry the same value; we do not verify that, matching
    the paper's semantics.
    """

    def __init__(self, att: str, default: Any = None):
        self.att = att
        self.default = default

    def __call__(self, links: Sequence[Link]) -> Any:
        if not links:
            return self.default
        chosen = min(links, key=lambda l: repr(l.id))
        values = link_values(chosen, self.att)
        return values[0] if values else self.default


class ConstAgg(AggregateFunction):
    """Assigns a constant, e.g. the string 'match' of Example 5 step 6."""

    def __init__(self, value: Any):
        self.value = value

    def __call__(self, links: Sequence[Link]) -> Any:
        return self.value


class AttrMap(AggregateFunction):
    """Aggregate several destination attributes in one pass.

    ``AttrMap(type=ConstAgg('match'), sim=First('sim'))`` is exactly the
    paper's A′ from Example 5 step 6: it yields a mapping, and the link
    aggregation operator merges every entry into the new link.
    """

    def __init__(self, **parts: AggregateFunction):
        if not parts:
            raise AggregationError("AttrMap needs at least one attribute")
        self.parts = parts

    def __call__(self, links: Sequence[Link]) -> Mapping[str, Any]:
        return {att: fn(links) for att, fn in self.parts.items()}


def as_aggregate(
    fn: AggregateFunction | Naf | Callable[[Sequence[Link]], AggResult],
) -> Callable[[Sequence[Link]], AggResult]:
    """Coerce any AF-like object into a links->result callable."""
    if isinstance(fn, Naf):
        return NumericAgg(fn)
    if callable(fn):
        return fn
    raise AggregationError(f"not an aggregation function: {fn!r}")

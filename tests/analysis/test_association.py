"""Tests for Apriori frequent-itemset and rule mining."""

from __future__ import annotations

import pytest

from repro.analysis import frequent_itemsets, mine_rules, transactions_from_graph


@pytest.fixture
def market_baskets():
    """The classic toy: bread+butter co-occur, milk everywhere."""
    return [
        {"bread", "butter", "milk"},
        {"bread", "butter"},
        {"bread", "milk"},
        {"butter", "milk"},
        {"bread", "butter", "jam"},
        {"milk"},
    ]


class TestFrequentItemsets:
    def test_supports_are_fractions(self, market_baskets):
        frequent = frequent_itemsets(market_baskets, min_support=0.5)
        assert frequent[frozenset({"bread"})] == pytest.approx(4 / 6)
        assert frequent[frozenset({"bread", "butter"})] == pytest.approx(3 / 6)

    def test_anti_monotonicity(self, market_baskets):
        # Every subset of a frequent itemset is frequent with >= support.
        frequent = frequent_itemsets(market_baskets, min_support=0.3)
        for itemset, support in frequent.items():
            for item in itemset:
                subset = itemset - {item}
                if subset:
                    assert frequent[subset] >= support

    def test_min_support_prunes(self, market_baskets):
        loose = frequent_itemsets(market_baskets, min_support=0.15)
        strict = frequent_itemsets(market_baskets, min_support=0.6)
        assert set(strict) <= set(loose)
        assert frozenset({"jam"}) not in strict

    def test_max_size_bound(self, market_baskets):
        frequent = frequent_itemsets(market_baskets, min_support=0.15, max_size=2)
        assert all(len(s) <= 2 for s in frequent)

    def test_empty_transactions(self):
        assert frequent_itemsets([], min_support=0.5) == {}

    def test_invalid_support(self, market_baskets):
        with pytest.raises(ValueError):
            frequent_itemsets(market_baskets, min_support=0.0)


class TestRules:
    def test_confidence_computation(self, market_baskets):
        rules = mine_rules(market_baskets, min_support=0.3, min_confidence=0.7)
        by_pair = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))): r
            for r in rules
        }
        rule = by_pair[(("butter",), ("bread",))]
        # butter appears 4x, bread+butter 3x -> confidence 0.75
        assert rule.confidence == pytest.approx(0.75)

    def test_min_confidence_filters(self, market_baskets):
        strict = mine_rules(market_baskets, min_support=0.3, min_confidence=0.9)
        loose = mine_rules(market_baskets, min_support=0.3, min_confidence=0.1)
        assert len(strict) <= len(loose)

    def test_lift_definition(self, market_baskets):
        rules = mine_rules(market_baskets, min_support=0.3, min_confidence=0.5)
        for rule in rules:
            frequent = frequent_itemsets(market_baskets, min_support=0.3)
            assert rule.lift == pytest.approx(
                rule.confidence / frequent[rule.consequent]
            )

    def test_sorted_by_confidence(self, market_baskets):
        rules = mine_rules(market_baskets, min_support=0.2, min_confidence=0.2)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_repr(self, market_baskets):
        rules = mine_rules(market_baskets, min_support=0.3, min_confidence=0.7)
        assert "=>" in repr(rules[0])


class TestGraphTransactions:
    def test_extraction(self, tiny_travel_graph):
        transactions = transactions_from_graph(tiny_travel_graph)
        # One basket per user with activities: John {d1,d3}, Ann {d1,d2,d3},
        # Bob {d1,d2,d4}, Cat {d1,d3}.
        assert len(transactions) == 4
        assert frozenset({"d1", "d3"}) in transactions

    def test_rules_from_graph(self, tiny_travel_graph):
        transactions = transactions_from_graph(tiny_travel_graph)
        rules = mine_rules(transactions, min_support=0.5, min_confidence=0.9)
        # d3 => d1 holds in every basket containing d3 (3/3).
        assert any(
            r.antecedent == frozenset({"d3"}) and r.consequent == frozenset({"d1"})
            for r in rules
        )

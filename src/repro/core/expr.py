"""Algebra expression trees: declarative plans over social content graphs.

The paper's vision is "declarative, flexible, and optimizable graph analysis
and information discovery processes".  The operator functions in
:mod:`repro.core` evaluate eagerly; this module adds the *logical plan*
layer: an expression DAG that can be inspected, rewritten by the optimizer
(:mod:`repro.core.optimizer`), explained with cardinality estimates, and
finally evaluated against named input graphs.

Build plans fluently::

    from repro.core.expr import input_graph

    G = input_graph('G')
    john = G.select_nodes({'id': 101})
    friends = G.semi_join(john, ('src', 'src')).select_links({'type': 'friend'})
    plan = friends.union(...)
    result = plan.evaluate({'G': graph})

Sub-expressions shared between branches (a DAG, as in Example 4 where G1
feeds G3, G4 and G6) are evaluated once per :meth:`Expr.evaluate` call.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.core import aggregation, composition, patterns, selection, semijoin, setops
from repro.core.conditions import Condition, as_condition
from repro.core.graph import SocialContentGraph
from repro.core.stats import (
    Card,
    GraphStats,
    SEMIJOIN_SELECTIVITY,
)
from repro.errors import ExpressionError


class Expr:
    """Base class of all plan nodes."""

    #: Operator name used in plan rendering.
    op: str = "expr"

    def children(self) -> tuple["Expr", ...]:
        """Child expressions, left-to-right."""
        return ()

    def with_children(self, *children: "Expr") -> "Expr":
        """Rebuild this node with new children (used by the optimizer)."""
        raise NotImplementedError

    def _compute(
        self, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        """Apply this operator to already-evaluated child results."""
        raise NotImplementedError

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self,
        env: Mapping[str, SocialContentGraph],
        _cache: dict[int, SocialContentGraph] | None = None,
    ) -> SocialContentGraph:
        """Evaluate the plan against named input graphs.

        Shared sub-expressions (same object) are computed once.  Without
        an explicit *_cache*, the returned graph never aliases an input or
        literal graph — identity plans (``input(G)``, or rewrites like
        ``G ∪ G ⇒ G``) hand back a copy — so callers may mutate the result
        without poisoning the environment or any cached plan state.
        Supplying *_cache* opts into raw shared results: entries (and the
        return value) may alias environment graphs and must be treated as
        read-only.
        """
        if _cache is not None:
            return self._eval(env, _cache)
        result = self._eval(env, {})
        if any(result is graph for graph in env.values()) or any(
            isinstance(node, LiteralE) and result is node.graph
            for node in iter_plan_nodes(self)
        ):
            result = result.copy()
        return result

    def _eval(
        self,
        env: Mapping[str, SocialContentGraph],
        cache: dict[int, SocialContentGraph],
    ) -> SocialContentGraph:
        key = id(self)
        if key in cache:
            return cache[key]
        inputs = [child._eval(env, cache) for child in self.children()]
        result = self._compute(inputs)
        cache[key] = result
        return result

    # -- cardinality ----------------------------------------------------------

    def estimate(self, stats: GraphStats) -> Card:
        """Estimated output cardinality given base-graph statistics."""
        raise NotImplementedError

    # -- rendering --------------------------------------------------------------

    def describe(self) -> str:
        """One-line operator description for plan rendering."""
        return self.op

    def render(self, stats: GraphStats | None = None, indent: int = 0) -> str:
        """Pretty-print the plan tree, optionally with estimates."""
        pad = "  " * indent
        line = pad + self.describe()
        if stats is not None:
            line += f"  [{self.estimate(stats)!r}]"
        lines = [line]
        for child in self.children():
            lines.append(child.render(stats, indent + 1))
        return "\n".join(lines)

    # -- fluent builder ----------------------------------------------------------

    def select_nodes(self, condition: Any = None, scorer: Any = None,
                     keywords: Any = None) -> "SelectNodesE":
        """σN⟨C,S⟩ over this expression's result."""
        return SelectNodesE(self, as_condition(condition, keywords), scorer)

    def select_links(self, condition: Any = None, scorer: Any = None,
                     keywords: Any = None) -> "SelectLinksE":
        """σL⟨C,S⟩ over this expression's result."""
        return SelectLinksE(self, as_condition(condition, keywords), scorer)

    def union(self, other: "Expr") -> "UnionE":
        """∪ with another expression."""
        return UnionE(self, other)

    def intersect(self, other: "Expr") -> "IntersectE":
        """∩ with another expression."""
        return IntersectE(self, other)

    def minus(self, other: "Expr") -> "MinusE":
        """Node-Driven Minus \\."""
        return MinusE(self, other)

    def link_minus(self, other: "Expr") -> "LinkMinusE":
        """Link-Driven Minus \\·."""
        return LinkMinusE(self, other)

    def semi_join(self, other: "Expr", delta: tuple[str, str] = ("src", "src")) -> "SemiJoinE":
        """⋉δ with another expression."""
        return SemiJoinE(self, other, delta)

    def anti_semi_join(self, other: "Expr", delta: tuple[str, str] = ("src", "src"),
                       on: str = "endpoint") -> "AntiSemiJoinE":
        """⋉̄δ (anti) with another expression."""
        return AntiSemiJoinE(self, other, delta, on)

    def compose_with(self, other: "Expr", delta: tuple[str, str],
                     f: Any, link_type: str = "composed") -> "ComposeE":
        """∘⟨δ,F⟩ with another expression."""
        return ComposeE(self, other, delta, f, link_type)

    def aggregate_nodes(self, condition: Any, direction: str, att: str, agg: Any) -> "NodeAggE":
        """γN⟨C,d,att,A⟩."""
        return NodeAggE(self, as_condition(condition), direction, att, agg)

    def aggregate_links(self, condition: Any, att: str, agg: Any,
                        link_type: str = "agg") -> "LinkAggE":
        """γL⟨C,att,A⟩."""
        return LinkAggE(self, as_condition(condition), att, agg, link_type)

    def aggregate_pattern(self, pattern: patterns.PathPattern, att: str, agg: Any,
                          link_type: str = "agg") -> "PatternAggE":
        """γL⟨GP,att,A⟩ (Figure 2 style)."""
        return PatternAggE(self, pattern, att, agg, link_type)


class InputE(Expr):
    """A named base graph bound at evaluation time."""

    op = "input"

    def __init__(self, name: str):
        self.name = name

    def with_children(self, *children: Expr) -> "InputE":
        if children:
            raise ExpressionError("input takes no children")
        return self

    def _eval(self, env, cache):
        if self.name not in env:
            raise ExpressionError(f"no input graph named {self.name!r} supplied")
        return env[self.name]

    def estimate(self, stats: GraphStats) -> Card:
        return Card(stats.num_nodes, stats.num_links)

    def describe(self) -> str:
        return f"input({self.name})"


class LiteralE(Expr):
    """An inline constant graph."""

    op = "literal"

    def __init__(self, graph: SocialContentGraph):
        self.graph = graph

    def with_children(self, *children: Expr) -> "LiteralE":
        return self

    def _eval(self, env, cache):
        return self.graph

    def estimate(self, stats: GraphStats) -> Card:
        return Card(self.graph.num_nodes, self.graph.num_links)

    def describe(self) -> str:
        return f"literal({self.graph!r})"


class _Unary(Expr):
    def __init__(self, child: Expr):
        self.child = child

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)


class _Binary(Expr):
    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


class _Ternary(Expr):
    def __init__(self, first: Expr, second: Expr, third: Expr):
        self._children = (first, second, third)

    def children(self) -> tuple[Expr, ...]:
        return self._children


class SelectNodesE(_Unary):
    """σN⟨C,S⟩ plan node."""

    op = "select_nodes"

    def __init__(self, child: Expr, condition: Condition, scorer: Any = None):
        super().__init__(child)
        self.condition = condition
        self.scorer = scorer

    def with_children(self, *children: Expr) -> "SelectNodesE":
        (child,) = children
        return SelectNodesE(child, self.condition, self.scorer)

    def _compute(self, inputs):
        return selection.select_nodes(inputs[0], self.condition, self.scorer)

    def estimate(self, stats: GraphStats) -> Card:
        child = self.child.estimate(stats)
        sel = stats.condition_selectivity(self.condition, of_links=False)
        return Card(child.nodes * sel, 0.0)

    def describe(self) -> str:
        return f"σN {self.condition!r}"


class SelectLinksE(_Unary):
    """σL⟨C,S⟩ plan node."""

    op = "select_links"

    def __init__(self, child: Expr, condition: Condition, scorer: Any = None):
        super().__init__(child)
        self.condition = condition
        self.scorer = scorer

    def with_children(self, *children: Expr) -> "SelectLinksE":
        (child,) = children
        return SelectLinksE(child, self.condition, self.scorer)

    def _compute(self, inputs):
        return selection.select_links(inputs[0], self.condition, self.scorer)

    def estimate(self, stats: GraphStats) -> Card:
        child = self.child.estimate(stats)
        sel = stats.condition_selectivity(self.condition, of_links=True)
        links = child.links * sel
        return Card(min(child.nodes, 2 * links), links)

    def describe(self) -> str:
        return f"σL {self.condition!r}"


class UnionE(_Binary):
    """∪ plan node."""

    op = "union"

    def with_children(self, *children: Expr) -> "UnionE":
        return UnionE(*children)

    def _compute(self, inputs):
        return setops.union(inputs[0], inputs[1])

    def estimate(self, stats: GraphStats) -> Card:
        a, b = self.left.estimate(stats), self.right.estimate(stats)
        return Card(a.nodes + b.nodes, a.links + b.links)

    def describe(self) -> str:
        return "∪"


class IntersectE(_Binary):
    """∩ plan node."""

    op = "intersect"

    def with_children(self, *children: Expr) -> "IntersectE":
        return IntersectE(*children)

    def _compute(self, inputs):
        return setops.intersection(inputs[0], inputs[1])

    def estimate(self, stats: GraphStats) -> Card:
        a, b = self.left.estimate(stats), self.right.estimate(stats)
        return Card(min(a.nodes, b.nodes) * 0.5, min(a.links, b.links) * 0.5)

    def describe(self) -> str:
        return "∩"


class MinusE(_Binary):
    """Node-Driven Minus plan node."""

    op = "minus"

    def with_children(self, *children: Expr) -> "MinusE":
        return MinusE(*children)

    def _compute(self, inputs):
        return setops.minus(inputs[0], inputs[1])

    def estimate(self, stats: GraphStats) -> Card:
        a, b = self.left.estimate(stats), self.right.estimate(stats)
        nodes = max(0.0, a.nodes - b.nodes)
        frac = nodes / a.nodes if a.nodes else 0.0
        return Card(nodes, a.links * frac * frac)

    def describe(self) -> str:
        return "\\"


class LinkMinusE(_Binary):
    """Link-Driven Minus plan node."""

    op = "link_minus"

    def with_children(self, *children: Expr) -> "LinkMinusE":
        return LinkMinusE(*children)

    def _compute(self, inputs):
        return setops.link_minus(inputs[0], inputs[1])

    def estimate(self, stats: GraphStats) -> Card:
        a, b = self.left.estimate(stats), self.right.estimate(stats)
        links = max(0.0, a.links - b.links)
        return Card(min(a.nodes, 2 * links), links)

    def describe(self) -> str:
        return "\\·"


class SemiJoinE(_Binary):
    """⋉δ plan node."""

    op = "semi_join"

    def __init__(self, left: Expr, right: Expr, delta: tuple[str, str]):
        super().__init__(left, right)
        self.delta = tuple(delta)

    def with_children(self, *children: Expr) -> "SemiJoinE":
        return SemiJoinE(children[0], children[1], self.delta)

    def _compute(self, inputs):
        return semijoin.semi_join(inputs[0], inputs[1], self.delta)  # type: ignore[arg-type]

    def estimate(self, stats: GraphStats) -> Card:
        a = self.left.estimate(stats)
        links = a.links * SEMIJOIN_SELECTIVITY
        return Card(min(a.nodes, 2 * links) if links else a.nodes * SEMIJOIN_SELECTIVITY, links)

    def describe(self) -> str:
        return f"⋉{self.delta}"


class AntiSemiJoinE(_Binary):
    """⋉̄δ plan node (endpoint- or id-matching)."""

    op = "anti_semi_join"

    def __init__(self, left: Expr, right: Expr, delta: tuple[str, str], on: str = "endpoint"):
        super().__init__(left, right)
        self.delta = tuple(delta)
        self.on = on

    def with_children(self, *children: Expr) -> "AntiSemiJoinE":
        return AntiSemiJoinE(children[0], children[1], self.delta, self.on)

    def _compute(self, inputs):
        return semijoin.anti_semi_join(inputs[0], inputs[1], self.delta, self.on)  # type: ignore[arg-type]

    def estimate(self, stats: GraphStats) -> Card:
        a = self.left.estimate(stats)
        links = a.links * (1.0 - SEMIJOIN_SELECTIVITY)
        return Card(min(a.nodes, 2 * links) if links else a.nodes, links)

    def describe(self) -> str:
        return f"⋉̄{self.delta}/{self.on}"


class ComposeE(_Binary):
    """∘⟨δ,F⟩ plan node."""

    op = "compose"

    def __init__(self, left: Expr, right: Expr, delta: tuple[str, str],
                 f: Any, link_type: str = "composed"):
        super().__init__(left, right)
        self.delta = tuple(delta)
        self.f = f
        self.link_type = link_type

    def with_children(self, *children: Expr) -> "ComposeE":
        return ComposeE(children[0], children[1], self.delta, self.f, self.link_type)

    def _compute(self, inputs):
        return composition.compose(
            inputs[0], inputs[1], self.delta, self.f, self.link_type  # type: ignore[arg-type]
        )

    def estimate(self, stats: GraphStats) -> Card:
        a, b = self.left.estimate(stats), self.right.estimate(stats)
        # Expected matches under uniform endpoint distribution.
        anchors = max(stats.num_nodes, 1)
        links = a.links * b.links / anchors
        return Card(min(a.nodes + b.nodes, 2 * links), links)

    def describe(self) -> str:
        return f"∘{self.delta}"


class NodeAggE(_Unary):
    """γN plan node."""

    op = "aggregate_nodes"

    def __init__(self, child: Expr, condition: Condition, direction: str,
                 att: str, agg: Any):
        super().__init__(child)
        self.condition = condition
        self.direction = direction
        self.att = att
        self.agg = agg

    def with_children(self, *children: Expr) -> "NodeAggE":
        (child,) = children
        return NodeAggE(child, self.condition, self.direction, self.att, self.agg)

    def _compute(self, inputs):
        return aggregation.aggregate_nodes(
            inputs[0], self.condition, self.direction, self.att, self.agg  # type: ignore[arg-type]
        )

    def estimate(self, stats: GraphStats) -> Card:
        return self.child.estimate(stats)  # isomorphic output

    def describe(self) -> str:
        return f"γN⟨{self.condition!r},{self.direction},{self.att}⟩"


class LinkAggE(_Unary):
    """γL plan node."""

    op = "aggregate_links"

    def __init__(self, child: Expr, condition: Condition, att: str, agg: Any,
                 link_type: str = "agg"):
        super().__init__(child)
        self.condition = condition
        self.att = att
        self.agg = agg
        self.link_type = link_type

    def with_children(self, *children: Expr) -> "LinkAggE":
        (child,) = children
        return LinkAggE(child, self.condition, self.att, self.agg, self.link_type)

    def _compute(self, inputs):
        return aggregation.aggregate_links(
            inputs[0], self.condition, self.att, self.agg, self.link_type
        )

    def estimate(self, stats: GraphStats) -> Card:
        child = self.child.estimate(stats)
        sel = stats.condition_selectivity(self.condition, of_links=True)
        # Bundles collapse; assume mean bundle size 2.
        return Card(child.nodes, child.links * (1 - sel) + child.links * sel / 2)

    def describe(self) -> str:
        return f"γL⟨{self.condition!r},{self.att}⟩"


class PatternAggE(_Unary):
    """γL⟨GP,att,A⟩ plan node."""

    op = "aggregate_pattern"

    def __init__(self, child: Expr, pattern: patterns.PathPattern, att: str,
                 agg: Any, link_type: str = "agg"):
        super().__init__(child)
        self.pattern = pattern
        self.att = att
        self.agg = agg
        self.link_type = link_type

    def with_children(self, *children: Expr) -> "PatternAggE":
        (child,) = children
        return PatternAggE(child, self.pattern, self.att, self.agg, self.link_type)

    def _compute(self, inputs):
        return patterns.aggregate_pattern(
            inputs[0], self.pattern, self.att, self.agg, self.link_type
        )

    def estimate(self, stats: GraphStats) -> Card:
        child = self.child.estimate(stats)
        # One output link per (start, end) pair; heuristically sqrt of paths.
        paths = child.links ** max(1, len(self.pattern)) / max(child.nodes, 1.0)
        return Card(min(child.nodes, 2 * paths), paths)

    def describe(self) -> str:
        return f"γL⟨GP:{len(self.pattern)} hops,{self.att}⟩"


class ConnectionBasisE(_Unary):
    """Connection selection (Selma's problem) as a plan node.

    σN(id=u) ⋉ connect links, with a per-friend topical-fit aggregation
    and the expert fallback — produces the basis null graph the social
    scoring stage consumes (see :mod:`repro.core.social`).
    """

    op = "connection_basis"

    def __init__(self, child: Expr, user_id: Any, keywords: tuple = (),
                 min_fit: float = 0.15, min_qualified: int = 2,
                 max_experts: int = 10):
        super().__init__(child)
        self.user_id = user_id
        self.keywords = tuple(keywords)
        self.min_fit = min_fit
        self.min_qualified = min_qualified
        self.max_experts = max_experts

    def with_children(self, *children: Expr) -> "ConnectionBasisE":
        (child,) = children
        return ConnectionBasisE(child, self.user_id, self.keywords,
                                self.min_fit, self.min_qualified,
                                self.max_experts)

    def _compute(self, inputs):
        from repro.core.social import connection_basis

        return connection_basis(
            inputs[0], self.user_id, self.keywords,
            min_fit=self.min_fit, min_qualified=self.min_qualified,
            max_experts=self.max_experts,
        )

    def estimate(self, stats: GraphStats) -> Card:
        return Card(stats.expected_basis_size() + 1, 0.0)

    def describe(self) -> str:
        return f"basis⟨u={self.user_id},terms={len(self.keywords)}⟩"


class SocialScoreE(_Ternary):
    """The social scoring stage: strategy-parameterised semi-join probe
    plus grouped aggregation over (graph, candidates, basis).

    *strategy* is one of :data:`repro.core.social.COMPILED_STRATEGIES` or
    ``"auto"`` — the compiler resolves ``"auto"`` from statistics before
    lowering; direct evaluation resolves it from the live graph.
    """

    op = "social_score"

    def __init__(self, graph: Expr, candidates: Expr, basis: Expr,
                 strategy: str, user_id: Any, keywords: tuple = (),
                 sim_threshold: float = 0.1, act_type: str = "visit"):
        super().__init__(graph, candidates, basis)
        self.strategy = strategy
        self.user_id = user_id
        self.keywords = tuple(keywords)
        self.sim_threshold = sim_threshold
        self.act_type = act_type

    def with_children(self, *children: Expr) -> "SocialScoreE":
        graph, candidates, basis = children
        return SocialScoreE(graph, candidates, basis, self.strategy,
                            self.user_id, self.keywords,
                            self.sim_threshold, self.act_type)

    def compute_resolved(self, inputs, strategy: str) -> SocialContentGraph:
        """Run the stage under an already-resolved strategy name.

        The physical layer resolves ``"auto"`` at compile time and pins
        the choice here, so EXPLAIN reports what actually ran.
        """
        from repro.core.social import social_scores_graph

        return social_scores_graph(
            inputs[0], inputs[1], inputs[2], strategy, self.user_id,
            keywords=self.keywords, sim_threshold=self.sim_threshold,
            act_type=self.act_type,
        )

    def _compute(self, inputs):
        return self.compute_resolved(inputs, self.strategy)

    def estimate(self, stats: GraphStats) -> Card:
        candidates = self._children[1].estimate(stats)
        reach = stats.expected_endorsements()
        items = min(candidates.nodes, reach)
        endorsers = min(stats.expected_basis_size(), reach)
        return Card(items + endorsers + 1, reach)

    def describe(self) -> str:
        return f"social⟨{self.strategy}⟩"


class CombineScoresE(_Binary):
    """α·semantic + (1−α)·social over (candidates, social scores).

    The endorsement-merge stage: max-normalises both components, merges
    them into one relevance score per item (§4's combination), and
    threads the social provenance through.
    """

    op = "combine"

    def __init__(self, candidates: Expr, social: Expr, alpha: float,
                 drop_zero: bool = True):
        super().__init__(candidates, social)
        self.alpha = alpha
        self.drop_zero = drop_zero

    def with_children(self, *children: Expr) -> "CombineScoresE":
        return CombineScoresE(children[0], children[1], self.alpha,
                              self.drop_zero)

    def _compute(self, inputs):
        from repro.core.social import combine_scores_graph

        return combine_scores_graph(inputs[0], inputs[1], self.alpha,
                                    self.drop_zero)

    def estimate(self, stats: GraphStats) -> Card:
        candidates = self.left.estimate(stats)
        social = self.right.estimate(stats)
        return Card(candidates.nodes + 1, social.links)

    def describe(self) -> str:
        return f"combine⟨α={self.alpha:g}⟩"


def input_graph(name: str = "G") -> InputE:
    """Entry point for fluent plan building."""
    return InputE(name)


def literal(graph: SocialContentGraph) -> LiteralE:
    """Wrap a constant graph as a plan node."""
    return LiteralE(graph)


#: Attribute names holding child expressions (not plan-node parameters).
_CHILD_FIELDS = ("child", "left", "right", "_children")


def same_expr(a: Expr, b: Expr) -> bool:
    """Structural identity of plans (used for idempotence rewrites).

    Conservative: parameters are compared by object identity, so this only
    detects sharing the way plans are actually built (reusing sub-plan
    objects), never false positives.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, InputE):
        return a.name == b.name  # type: ignore[attr-defined]
    if isinstance(a, LiteralE):
        return a.graph is b.graph  # type: ignore[attr-defined]
    params_a = {
        k: v for k, v in vars(a).items() if k not in _CHILD_FIELDS
    }
    params_b = {
        k: v for k, v in vars(b).items() if k not in _CHILD_FIELDS
    }
    if params_a.keys() != params_b.keys():
        return False
    for key in params_a:
        va, vb = params_a[key], params_b[key]
        if va is not vb and va != vb:
            return False
    ca, cb = a.children(), b.children()
    return len(ca) == len(cb) and all(same_expr(x, y) for x, y in zip(ca, cb))


def iter_plan_nodes(expr: Expr):
    """Yield every node of the plan DAG once (pre-order, dedup by id)."""
    seen: set[int] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(reversed(node.children()))


def _callable_ids(predicate: Any) -> tuple:
    """Identity tokens for opaque callables nested in a predicate tree.

    Predicate ``repr`` is structural for the declarative predicate classes,
    but a :class:`~repro.core.conditions.Lambda` renders only its label —
    two different functions under the same label must not collide in a
    cache key, so their identities are folded in explicitly.
    """
    from repro.core.conditions import And, Lambda, Not, Or

    if isinstance(predicate, Lambda):
        return (id(predicate.fn),)
    if isinstance(predicate, (And, Or)):
        return tuple(t for p in predicate.parts for t in _callable_ids(p))
    if isinstance(predicate, Not):
        return _callable_ids(predicate.inner)
    return ()


def _param_key(value: Any) -> Any:
    """A hashable token for one plan-node parameter.

    Plain data keys by value; conditions key by their structural ``repr``
    (plus identities of any embedded callables); everything else — scorers,
    aggregate functions, path patterns, graphs — keys by object identity,
    mirroring :func:`same_expr`'s conservative parameter comparison.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, tuple):
        return tuple(_param_key(v) for v in value)
    if isinstance(value, Condition):
        lambdas = tuple(t for p in value.predicates for t in _callable_ids(p))
        return ("cond", repr(value), lambdas)
    return ("obj", id(value))


def plan_key(expr: Expr) -> tuple:
    """Hashable structural key of a plan (the cacheable form of `same_expr`).

    Two plans with equal keys are observationally equivalent: they apply
    the same operators with the same parameters to the same inputs.  Unlike
    :func:`same_expr`, independently-built but identical conditions compare
    equal (their structural ``repr`` is the key), which is what lets a plan
    cache recognise a repeated request; opaque parameters (scoring
    functions, aggregate functions, literal graphs) still key by identity,
    so a key can never falsely match across different semantics.
    """
    if isinstance(expr, InputE):
        return ("input", expr.name)
    if isinstance(expr, LiteralE):
        return ("literal", id(expr.graph))
    params = tuple(
        (name, _param_key(value))
        for name, value in sorted(vars(expr).items())
        if name not in _CHILD_FIELDS
    )
    return (
        type(expr).__name__,
        params,
        tuple(plan_key(child) for child in expr.children()),
    )

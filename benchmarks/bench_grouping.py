"""Experiment S7 — §7 grouping, meaningfulness choice, and explanations.

Regenerates the Alexia scenario's presentation decision: all candidate
grouping dimensions are built and scored for meaningfulness, the winner is
reported (the paper's prediction: endorser-group for Alexia), and each
stage is timed.
"""

from __future__ import annotations

import pytest

from repro.discovery import InformationDiscoverer
from repro.presentation import (
    InformationOrganizer,
    endorser_group_grouping,
    explain_collaborative,
    meaningfulness,
    social_grouping,
    structural_grouping,
    topical_grouping,
)
from repro.workloads import ALEXIA, JOHN


@pytest.fixture(scope="module")
def msgs(travel_site):
    discoverer = InformationDiscoverer(travel_site.graph)
    return {
        "alexia": discoverer.discover(ALEXIA, "history"),
        "john": discoverer.discover(JOHN, "Denver attractions"),
    }


def test_grouping_choice_table(travel_site, msgs, report, benchmark):
    msg = msgs["alexia"]
    benchmark.pedantic(social_grouping, args=(msg, 0.3), rounds=1,
                       iterations=1)
    candidates = {
        "social (Def 14)": social_grouping(msg, 0.3),
        "topical": topical_grouping(msg),
        "structural:city": structural_grouping(msg, "city"),
        "structural:category": structural_grouping(msg, "category"),
        "endorser-group": endorser_group_grouping(msg, travel_site.graph),
    }
    lines = [
        "",
        "=== §7 grouping choice for Alexia's 'history' results ===",
        f"  {'dimension':<22}{'groups':>7}{'meaningfulness':>15}",
    ]
    scores = {}
    for name, grouping in candidates.items():
        score = meaningfulness(grouping, msg)
        scores[name] = score
        lines.append(f"  {name:<22}{grouping.num_groups:>7}{score:>15.3f}")
    winner = max(scores, key=scores.get)
    lines.append(f"  chosen: {winner}")
    report(*lines)
    # The paper's Example 3 outcome: endorser-based organisation wins.
    assert winner == "endorser-group"


@pytest.mark.parametrize("dimension", ["social", "topical", "structural",
                                       "endorser"])
def test_grouping_latency(travel_site, msgs, benchmark, dimension):
    msg = msgs["alexia"]
    if dimension == "social":
        benchmark(social_grouping, msg, 0.3)
    elif dimension == "topical":
        benchmark(topical_grouping, msg)
    elif dimension == "structural":
        benchmark(structural_grouping, msg, "category")
    else:
        benchmark(endorser_group_grouping, msg, travel_site.graph)


def test_full_page_assembly(travel_site, msgs, benchmark):
    organizer = InformationOrganizer(travel_site.graph)
    benchmark(organizer.organize, msgs["john"])


def test_explanation_latency(travel_site, msgs, benchmark):
    msg = msgs["john"]
    item = msg.item_ids[0]
    benchmark(explain_collaborative, travel_site.graph, JOHN, item, True)

"""Unit tests for expression plans and the logical optimizer."""

from __future__ import annotations

import pytest

from repro.core import (
    GraphStats,
    PathLinkAvg,
    decompose_pattern_aggregation,
    figure2_pattern,
    input_graph,
    optimize,
    select_links,
    select_nodes,
    semi_join,
    union,
)
from repro.core.expr import (
    PatternAggE,
    SelectLinksE,
    SemiJoinE,
    UnionE,
    same_expr,
)
from repro.core.optimizer import (
    fuse_selections,
    link_minus_to_antijoin,
    push_selection_into_semijoin,
    setop_idempotence,
)
from repro.errors import ExpressionError


class TestEvaluation:
    def test_example4_style_plan(self, tiny_travel_graph):
        G = input_graph("G")
        john = G.select_nodes({"id": 101})
        friends = G.semi_join(john, ("src", "src")).select_links({"type": "friend"})
        result = friends.evaluate({"G": tiny_travel_graph})
        assert result.link_ids() == {"f1", "f2"}

    def test_plan_equals_eager(self, tiny_travel_graph):
        g = tiny_travel_graph
        G = input_graph("G")
        plan = G.select_links({"type": "visit"}).union(
            G.select_links({"type": "friend"})
        )
        lazy = plan.evaluate({"G": g})
        eager = union(
            select_links(g, {"type": "visit"}), select_links(g, {"type": "friend"})
        )
        assert lazy.same_as(eager)

    def test_shared_subexpression_evaluated_once(self, tiny_travel_graph):
        calls = {"n": 0}
        G = input_graph("G")
        shared = G.select_links({"type": "visit"})
        original = shared._compute

        def counting(inputs):
            calls["n"] += 1
            return original(inputs)

        shared._compute = counting  # type: ignore[method-assign]
        plan = shared.union(shared)
        plan.evaluate({"G": tiny_travel_graph})
        assert calls["n"] == 1

    def test_missing_input_raises(self):
        with pytest.raises(ExpressionError):
            input_graph("G").evaluate({})

    def test_set_and_join_ops(self, tiny_travel_graph):
        G = input_graph("G")
        visits = G.select_links({"type": "visit"})
        friends = G.select_links({"type": "friend"})
        plan = visits.minus(friends)
        result = plan.evaluate({"G": tiny_travel_graph})
        assert all(l.has_type("visit") for l in result.links())

    def test_aggregation_plan(self, tiny_travel_graph):
        from repro.core import count

        G = input_graph("G")
        plan = G.aggregate_nodes({"type": "friend"}, "src", "fc", count())
        result = plan.evaluate({"G": tiny_travel_graph})
        assert result.node(101).value("fc") == 2

    def test_render_mentions_operators(self, tiny_travel_graph):
        G = input_graph("G")
        plan = G.select_links({"type": "visit"}).union(G)
        text = plan.render(GraphStats.of(tiny_travel_graph))
        assert "∪" in text and "σL" in text and "input(G)" in text


class TestRules:
    def test_fuse_selections(self):
        G = input_graph("G")
        plan = G.select_links({"type": "visit"}).select_links({"w__ge": 1})
        fused = fuse_selections(plan)
        assert isinstance(fused, SelectLinksE)
        assert isinstance(fused.child, type(G))
        assert len(fused.condition.predicates) == 2

    def test_fuse_preserves_semantics(self, tiny_travel_graph):
        G = input_graph("G")
        plan = G.select_links({"type": "visit"}).select_links({"type": "act"})
        fused, report = optimize(plan)
        assert "fuse_selections" in report.applied
        assert fused.evaluate({"G": tiny_travel_graph}).same_as(
            plan.evaluate({"G": tiny_travel_graph})
        )

    def test_no_fuse_when_inner_scores(self):
        G = input_graph("G")
        plan = G.select_links(None, keywords="denver").select_links({"type": "x"})
        assert fuse_selections(plan) is None

    def test_push_selection_into_semijoin(self, tiny_travel_graph):
        G = input_graph("G")
        john = G.select_nodes({"id": 101})
        plan = G.semi_join(john, ("src", "src")).select_links({"type": "friend"})
        pushed = push_selection_into_semijoin(plan)
        assert isinstance(pushed, SemiJoinE)
        assert isinstance(pushed.left, SelectLinksE)
        # semantics preserved
        assert pushed.evaluate({"G": tiny_travel_graph}).same_as(
            plan.evaluate({"G": tiny_travel_graph})
        )

    def test_link_minus_rewrite(self, paper_minus_graphs):
        g1, g2 = paper_minus_graphs
        G1, G2 = input_graph("G1"), input_graph("G2")
        plan = G1.link_minus(G2)
        rewritten = link_minus_to_antijoin(plan)
        assert rewritten is not None
        assert rewritten.evaluate({"G1": g1, "G2": g2}).same_as(
            plan.evaluate({"G1": g1, "G2": g2})
        )

    def test_setop_idempotence(self, tiny_travel_graph):
        G = input_graph("G")
        sub = G.select_links({"type": "visit"})
        plan = sub.union(sub)
        simplified = setop_idempotence(plan)
        assert simplified is sub

    def test_same_expr_distinguishes_params(self):
        G = input_graph("G")
        a = G.select_links({"type": "visit"})
        b = G.select_links({"type": "friend"})
        assert same_expr(a, a)
        assert not same_expr(a, b)

    def test_optimize_reaches_fixpoint(self, tiny_travel_graph):
        G = input_graph("G")
        sub = G.select_links({"type": "visit"}).select_links({"type": "act"})
        plan = sub.union(sub)
        optimized, report = optimize(plan)
        assert report.passes >= 1
        assert optimized.evaluate({"G": tiny_travel_graph}).same_as(
            plan.evaluate({"G": tiny_travel_graph})
        )


class TestEstimates:
    def test_selection_estimate_uses_type_histogram(self, tiny_travel_graph):
        stats = GraphStats.of(tiny_travel_graph)
        G = input_graph("G")
        visits = G.select_links({"type": "visit"})
        friends = G.select_links({"type": "friend"})
        assert visits.estimate(stats).links > friends.estimate(stats).links

    def test_union_estimate_adds(self, tiny_travel_graph):
        stats = GraphStats.of(tiny_travel_graph)
        G = input_graph("G")
        plan = G.union(G)
        est = plan.estimate(stats)
        assert est.links == 2 * tiny_travel_graph.num_links

    def test_id_selection_is_selective(self, tiny_travel_graph):
        stats = GraphStats.of(tiny_travel_graph)
        G = input_graph("G")
        assert G.select_nodes({"id": 101}).estimate(stats).nodes <= 1.01


class TestPatternDecomposition:
    def test_decomposed_plan_equivalent(self, tiny_travel_graph):
        # Build match+visit graph via the recipe, then compare pattern vs
        # decomposed multi-step plans on it.
        from repro.core import (
            figure2_collaborative_filtering,
            recommendations_from,
        )
        from repro.core.recipes import example5_collaborative_filtering

        G = input_graph("G")
        pattern_plan = G.aggregate_pattern(
            figure2_pattern(101), "score", PathLinkAvg(0, "sim"),
            link_type="recommend",
        )
        assert isinstance(pattern_plan, PatternAggE)
        multistep_plan = decompose_pattern_aggregation(pattern_plan)

        # Input: G4 ∪ G5 from Example 5 (match links + visit links).
        from repro.core import (
            AttrMap, ConstAgg, First, JaccardOnNodeSets, SetAgg,
            aggregate_links, aggregate_nodes, compose, select_links,
            select_nodes, semi_join, union,
        )

        g = tiny_travel_graph
        g1 = select_links(
            semi_join(g, select_nodes(g, {"id": 101}), ("src", "src")),
            {"type": "visit"},
        )
        g1p = aggregate_nodes(g1, {"type": "visit"}, "src", "vst", SetAgg("tgt"))
        g2 = select_links(
            semi_join(g, select_nodes(g, {"id__ne": 101}), ("src", "src")),
            {"type": "visit"},
        )
        g2p = aggregate_nodes(g2, {"type": "visit"}, "src", "vst", SetAgg("tgt"))
        g3 = compose(g1p, g2p, ("tgt", "tgt"), JaccardOnNodeSets("vst", "sim"))
        g4 = select_links(
            aggregate_links(g3, {"sim__gt": 0.5}, "type",
                            AttrMap(type=ConstAgg("match"), sim=First("sim"))),
            {"type": "match"},
        )
        g5 = select_links(
            semi_join(g, select_nodes(g, {"type": "destination"}), ("tgt", "src")),
            {"type": "visit"},
        )
        base = union(g4, g5)

        pat = pattern_plan.evaluate({"G": base})
        multi = multistep_plan.evaluate({"G": base})
        p = {l.tgt: l.value("score") for l in pat.links()}
        m = {l.tgt: l.value("score") for l in multi.links()}
        assert p == pytest.approx(m)

    def test_decomposition_rejects_unsupported_shapes(self):
        G = input_graph("G")
        from repro.core import PathCount

        plan = G.aggregate_pattern(figure2_pattern(1), "s", PathCount())
        with pytest.raises(ExpressionError):
            decompose_pattern_aggregation(plan)

"""Inverted-list indexes for network-aware search (paper §6.2).

    "One straightforward adaptation to our framework is to store one
    inverted list per (tag, user) pair and sort items in each list
    according to their scores for the tag and user.  We denote such an
    index by IL^u_k, which contains entries of the form (i, score_k(i,u))."

Two index structures live here:

* :class:`ExactUserIndex` — the straightforward per-(tag, user) index: big
  but query-time optimal (exact scores stored, top-k prunes aggressively);
* :class:`GlobalPopularityIndex` — the non-personalised IR baseline (one
  list per tag, scored by global tagger counts); it exists so benches can
  show what network-aware scoring buys.

Query processing statistics (sorted/random accesses, exact-score
computations) are recorded on every query so the §6.2 trade-off bench can
report machine-independent work alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core import Id
from repro.indexing.scores import ScoreF, ScoreG, TaggingData, f_count, g_sum
from repro.indexing.topk import QueryStats, threshold_algorithm

#: Bytes per index entry assumed by the paper's 1 TB estimate.
ENTRY_BYTES = 10


@dataclass
class IndexReport:
    """Size accounting for an index structure."""

    entries: int
    lists: int

    @property
    def bytes(self) -> int:
        """Size under the paper's 10-bytes-per-entry assumption."""
        return self.entries * ENTRY_BYTES


class ExactUserIndex:
    """Per-(tag, user) inverted lists with exact scores.

    Lists are sorted by descending score, enabling Fagin-style top-k
    pruning [16].  Entries exist only for items with a non-zero score for
    that (tag, user) pair — an item none of u's network tagged with k never
    appears in IL^u_k.
    """

    def __init__(
        self,
        data: TaggingData,
        f: ScoreF = f_count,
        g: ScoreG = g_sum,
    ):
        self.data = data
        self.f = f
        self.g = g
        self.lists: dict[tuple[str, Id], list[tuple[Id, float]]] = {}
        self._build()

    def _build(self) -> None:
        # Invert taggers: for each (item, tag), bump every network
        # neighbour of each tagger — one pass over tagging actions instead
        # of users x items x tags.
        accumulator: dict[tuple[str, Id], dict[Id, float]] = {}
        for (item, tag), taggers in self.data.taggers.items():
            reached: dict[Id, set] = {}
            for tagger in taggers:
                for user in self.data.network.get(tagger, ()):  # u sees tagger
                    reached.setdefault(user, set()).add(tagger)
            for user, endorsers in reached.items():
                accumulator.setdefault((tag, user), {})[item] = self.f(endorsers)
        for key, per_item in accumulator.items():
            entries = sorted(per_item.items(), key=lambda kv: (-kv[1], repr(kv[0])))
            self.lists[key] = entries

    # -- size -----------------------------------------------------------------

    def report(self) -> IndexReport:
        """Entry/list counts for the sizing bench."""
        return IndexReport(
            entries=sum(len(v) for v in self.lists.values()),
            lists=len(self.lists),
        )

    # -- querying ----------------------------------------------------------------

    def query(
        self, user: Id, keywords: Sequence[str], k: int
    ) -> tuple[list[tuple[Id, float]], QueryStats]:
        """Top-k via the Threshold Algorithm over the user's lists.

        Random access uses the stored lists (dict lookups), so no exact
        score recomputation is ever needed — the structural advantage the
        paper credits this index with.
        """
        lists = [self.lists.get((kw, user), []) for kw in keywords]
        index_maps = [dict(entries) for entries in lists]

        def random_access(item: Id, list_index: int) -> float:
            return index_maps[list_index].get(item, 0.0)

        return threshold_algorithm(lists, random_access, k, self.g)


class GlobalPopularityIndex:
    """One inverted list per tag with *global* scores (classic IR baseline).

    score_k(i) = |taggers(i, k)| — no personalisation.  Used by benches to
    quantify how different network-aware rankings are from global ones.
    """

    def __init__(self, data: TaggingData, g: ScoreG = g_sum):
        self.data = data
        self.g = g
        self.lists: dict[str, list[tuple[Id, float]]] = {}
        per_tag: dict[str, dict[Id, float]] = {}
        for (item, tag), taggers in data.taggers.items():
            per_tag.setdefault(tag, {})[item] = float(len(taggers))
        for tag, per_item in per_tag.items():
            self.lists[tag] = sorted(
                per_item.items(), key=lambda kv: (-kv[1], repr(kv[0]))
            )

    def report(self) -> IndexReport:
        """Entry/list counts for the sizing bench."""
        return IndexReport(
            entries=sum(len(v) for v in self.lists.values()),
            lists=len(self.lists),
        )

    def query(
        self, user: Id, keywords: Sequence[str], k: int
    ) -> tuple[list[tuple[Id, float]], QueryStats]:
        """Top-k by global popularity (user is ignored by construction)."""
        lists = [self.lists.get(kw, []) for kw in keywords]
        index_maps = [dict(entries) for entries in lists]

        def random_access(item: Id, list_index: int) -> float:
            return index_maps[list_index].get(item, 0.0)

        return threshold_algorithm(lists, random_access, k, self.g)

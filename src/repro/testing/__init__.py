"""Test-only machinery: fault arming, chaos schedules.

Nothing under ``repro.testing`` may be imported by production modules —
archcheck rule T001 enforces that, which is what makes the fault points
in :mod:`repro.core.faults` provably inert in serving processes.
"""

from repro.testing.faults import (
    FaultPhase,
    FaultSchedule,
    arm,
    armed_faults,
    disarm,
    disarm_all,
    file_corruptor,
    raising,
    sleeping,
    worker_killer,
)

__all__ = [
    "FaultPhase",
    "FaultSchedule",
    "arm",
    "armed_faults",
    "disarm",
    "disarm_all",
    "file_corruptor",
    "raising",
    "sleeping",
    "worker_killer",
]

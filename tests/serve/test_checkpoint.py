"""Gateway drain-then-snapshot, and the depth-shed retry-storm fix."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import SearchRequest, SearchResponse, Session
from repro.core import Link, Node
from repro.management import DataManager
from repro.serve import (
    GLOBAL_DEPTH,
    AdmissionController,
    AdmissionPolicy,
    GatewayConfig,
    Overloaded,
    ServeGateway,
    TenantPolicy,
)
from tests.factories import social_site_graph


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def durable_session(tmp_path, shards=2):
    dm = DataManager(shards=shards)
    dm.load_graph(social_site_graph(num_users=8, num_items=10))
    dm.enable_wal(tmp_path / "wal")
    return Session(dm)


OPEN = AdmissionPolicy(default=TenantPolicy(capacity=1e9, refill_per_s=1e9))


def _request(**kw):
    defaults = dict(user_id="u0", text="topic1 thing", page_size=4)
    defaults.update(kw)
    return SearchRequest(**defaults)


# --------------------------------------------------- depth-shed retry hints


class TestDepthRetryHints:
    def _depth_saturated(self, clock, max_depth=1, depth_retry_s=0.05):
        ctl = AdmissionController(
            AdmissionPolicy(
                default=TenantPolicy(capacity=1e9, refill_per_s=1e9),
                max_depth=max_depth,
                depth_retry_s=depth_retry_s,
            ),
            clock=clock,
        )
        ctl.admit("pinned")  # holds the only depth slot
        return ctl

    def test_depth_shed_retry_is_positive(self):
        # the bug: retry_after_s=0.0 told every victim "retry NOW"
        ctl = self._depth_saturated(FakeClock())
        shed = ctl.admit("t0")
        assert isinstance(shed, Overloaded)
        assert shed.reason == GLOBAL_DEPTH
        assert shed.retry_after_s > 0.0

    def test_depth_shed_retry_is_bounded(self):
        ctl = self._depth_saturated(FakeClock(), depth_retry_s=0.05)
        for tenant in (f"t{i}" for i in range(50)):
            shed = ctl.admit(tenant)
            assert 0.05 <= shed.retry_after_s < 0.10

    def test_shed_storm_spreads_retries(self):
        # 200 victims shed at the same instant under a fake clock must
        # not be told to come back at the same time — the retry times
        # must spread, or the wave re-forms against the full queue
        clock = FakeClock()
        ctl = self._depth_saturated(clock, depth_retry_s=0.05)
        hints = [ctl.admit(f"t{i % 20}").retry_after_s for i in range(200)]
        assert all(h > 0.0 for h in hints)
        assert len(set(hints)) > 100  # spread, not one synchronized wave

    def test_same_tenant_consecutive_sheds_differ(self):
        clock = FakeClock()
        ctl = self._depth_saturated(clock)
        first = ctl.admit("t0").retry_after_s
        second = ctl.admit("t0").retry_after_s
        assert first != second

    def test_hints_deterministic_for_replay(self):
        # no RNG: the same shed history produces the same hints, so load
        # tests and simulations replay exactly
        a = [self._depth_saturated(FakeClock()).admit(f"t{i}").retry_after_s
             for i in range(5)]
        b = [self._depth_saturated(FakeClock()).admit(f"t{i}").retry_after_s
             for i in range(5)]
        assert a == b

    def test_budget_shed_hint_unchanged(self):
        clock = FakeClock()
        ctl = AdmissionController(
            AdmissionPolicy(default=TenantPolicy(capacity=1, refill_per_s=2)),
            clock=clock,
        )
        ctl.admit("t0")
        shed = ctl.admit("t0")
        assert shed.retry_after_s == pytest.approx(0.5)  # refill math


# -------------------------------------------------------- gateway checkpoint


class TestGatewayCheckpoint:
    def test_checkpoint_requires_running_gateway(self, tmp_path):
        gateway = ServeGateway(durable_session(tmp_path))
        with pytest.raises(Exception, match="not running"):
            asyncio.run(gateway.checkpoint(tmp_path))

    def test_checkpoint_then_recover_serves_identically(self, tmp_path):
        session = durable_session(tmp_path)
        requests = [
            _request(user_id=f"u{i % 4}", strategy=s)
            for i in range(8)
            for s in ("friends", "similar_users", "item_based")
        ]

        async def serve_and_checkpoint():
            async with ServeGateway(
                session, GatewayConfig(admission=OPEN)
            ) as gateway:
                live = await asyncio.gather(*[
                    gateway.submit("tenant", r) for r in requests
                ])
                manifest = await gateway.checkpoint(tmp_path)
                return live, manifest

        live, manifest = asyncio.run(serve_and_checkpoint())
        assert all(isinstance(o, SearchResponse) for o in live)
        assert manifest["extra"]["session"]["warm_recipes"]

        restored = Session.restore(tmp_path)

        async def serve_restored():
            async with ServeGateway(
                restored, GatewayConfig(admission=OPEN)
            ) as gateway:
                return await asyncio.gather(*[
                    gateway.submit("tenant", r) for r in requests
                ])

        recovered = asyncio.run(serve_restored())
        for before, after in zip(live, recovered):
            assert after.items == before.items
            # cursors differ by design: they carry the new boot token
            assert after.page_info.offset == before.page_info.offset
            assert after.page_info.returned == before.page_info.returned
            assert (after.page_info.total_items
                    == before.page_info.total_items)

    def test_checkpoint_interleaved_with_traffic(self, tmp_path):
        session = durable_session(tmp_path)

        async def drive():
            async with ServeGateway(
                session,
                GatewayConfig(admission=OPEN, max_concurrent_batches=2),
            ) as gateway:
                first = asyncio.gather(*[
                    gateway.submit("a", _request(user_id=f"u{i % 8}"))
                    for i in range(12)
                ])
                manifest = await gateway.checkpoint(tmp_path)
                # serving resumes after the snapshot completes
                late = await gateway.submit("a", _request(user_id="u1"))
                return await first, manifest, late

        outcomes, manifest, late = asyncio.run(drive())
        assert all(isinstance(o, SearchResponse) for o in outcomes)
        assert isinstance(late, SearchResponse)
        assert manifest["format"] == "socialscope-site"

    def test_wal_tail_after_checkpoint_recovers(self, tmp_path):
        session = durable_session(tmp_path)

        async def checkpoint_then_write():
            async with ServeGateway(
                session, GatewayConfig(admission=OPEN)
            ) as gateway:
                await gateway.submit("a", _request())
                await gateway.checkpoint(tmp_path)
            # post-checkpoint activity lands in the WAL only
            session.data_manager.add_node(
                Node("i99", type="item", name="late",
                     keywords="topic1 thing"))
            session.data_manager.add_link(
                Link("a99", "u0", "i99", type="act, visit"))
            session.data_manager.wal.sync()

        asyncio.run(checkpoint_then_write())
        restored = Session.restore(tmp_path)
        items = restored.run(_request(page_size=50)).items
        assert "i99" in items

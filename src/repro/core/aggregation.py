"""Node and Link Aggregation operators (paper §5.4, Definitions 9-10).

Node Aggregation ``γN⟨C,d,att,A⟩(G)``:

    "produces a social content graph G′ that is isomorphic to G and
    ∀v ∈ G′ if ∃ℓ ∈ G ∧ ℓ satisfies C ∧ ℓ.d = v, then
    v.att = A({ℓi ∈ links(G) | ℓi satisfies C & ℓi.d = v}).

    Notice that the directionality parameter d acts as a group-by
    attribute."

Link Aggregation ``γL⟨C,att,A⟩(G)``:

    "1. Partition {ℓ | ℓ ∈ links(G) ∧ ℓ satisfies C} on ℓ.src and ℓ.tgt;
     2. For each set of links Ls,t sharing the same source node s and the
        same target node t, replace Ls,t with a new link ℓs,t;
     3. Attach an attribute att with ℓs,t, with its value computed as
        A(Ls,t)."

Links *not* satisfying C are untouched (only the partitioned bundles are
replaced), and node aggregation never changes graph structure.

Both operators accept anything in AF = SAF ∪ NAF
(:mod:`repro.core.aggfuncs`); an A returning a mapping sets several
attributes at once (the paper's Example 5 step 6 does exactly this).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.aggfuncs import AggResult, as_aggregate
from repro.core.conditions import as_condition
from repro.core.graph import Id, Link, Node, SocialContentGraph
from repro.core.selection import ConditionLike
from repro.core.semijoin import Direction
from repro.errors import AggregationError


def _apply_result(record_attrs: dict[str, Any], att: str, result: AggResult) -> None:
    """Write an aggregation result into an attribute-update dict."""
    if isinstance(result, Mapping):
        record_attrs.update(result)
    else:
        record_attrs[att] = result


def aggregate_nodes(
    graph: SocialContentGraph,
    condition: ConditionLike,
    direction: Direction,
    att: str,
    agg,
) -> SocialContentGraph:
    """γN⟨C,d,att,A⟩(G) — Definition 9.

    Groups the links satisfying C by their ``d`` endpoint and stores
    ``A(group)`` into attribute *att* of that endpoint node.  The output is
    isomorphic to G (same nodes/links); only annotated node records change.

    Examples
    --------
    Count each user's friends (the paper's ``fnd_cnt``)::

        aggregate_nodes(g, {'type': 'friend'}, 'src', 'fnd_cnt', count())

    Collect all tags a user has ever used::

        aggregate_nodes(g, {'type': 'tag'}, 'src', 'tags_used', SetAgg('tags'))
    """
    if direction not in ("src", "tgt"):
        raise AggregationError(f"direction must be 'src' or 'tgt', got {direction!r}")
    cond = as_condition(condition)
    fn = as_aggregate(agg)

    groups: dict[Id, list[Link]] = {}
    for link in graph.links():
        if cond.satisfied_by(link):
            groups.setdefault(link.endpoint(direction), []).append(link)

    out = graph.copy()
    for node_id, links in groups.items():
        links.sort(key=lambda l: repr(l.id))  # deterministic A input order
        updates: dict[str, Any] = {}
        _apply_result(updates, att, fn(links))
        out.replace_node(out.node(node_id).with_attrs(**updates))
    return out


def aggregate_links(
    graph: SocialContentGraph,
    condition: ConditionLike,
    att: str,
    agg,
    link_type: str = "agg",
    link_id_prefix: str | None = None,
) -> SocialContentGraph:
    """γL⟨C,att,A⟩(G) — Definition 10.

    Replaces every bundle of C-satisfying links sharing (src, tgt) with one
    new link carrying ``att = A(bundle)``.  Non-satisfying links and all
    nodes are preserved.

    The new link's id is deterministic: ``"agg:{att}:{src}->{tgt}"`` (or the
    supplied *link_id_prefix*).  Its type defaults to *link_type* unless A
    itself sets ``type`` (as Example 5 step 6's A′ does).
    """
    cond = as_condition(condition)
    fn = as_aggregate(agg)
    prefix = link_id_prefix if link_id_prefix is not None else f"agg:{att}"

    bundles: dict[tuple[Id, Id], list[Link]] = {}
    survivors: list[Link] = []
    for link in graph.links():
        if cond.satisfied_by(link):
            bundles.setdefault((link.src, link.tgt), []).append(link)
        else:
            survivors.append(link)

    out = SocialContentGraph(catalog=graph.catalog)
    for node in graph.nodes():
        out.add_node(node)
    for link in survivors:
        out.add_link(link)
    for (src, tgt), links in sorted(bundles.items(), key=lambda kv: repr(kv[0])):
        links.sort(key=lambda l: repr(l.id))
        attrs: dict[str, Any] = {}
        _apply_result(attrs, att, fn(links))
        attrs.setdefault("type", link_type)
        attrs.setdefault("agg_size", len(links))
        out.add_link(Link(f"{prefix}:{src}->{tgt}", src, tgt, attrs))
    return out

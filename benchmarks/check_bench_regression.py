#!/usr/bin/env python
"""Bench regression gate: fresh BENCH_plan.json vs. committed baselines.

Wall-clock milliseconds do not transfer between machines, so the gate
mostly tracks *ratios* — columnar scan over the legacy row scan, compiled
serving over the hand-written pipeline, compiled social strategies over
their legacy references, sequential serving over the batching gateway.
The serve bench additionally gates its latency percentiles (p95/p99) and
peak RSS directly: regime-matched baselines plus the multiplicative
budget absorb runner variance there.  Each tracked metric must not
regress past ``baseline * tolerance`` (plus a small absolute slack,
because a ratio of 0.03 jittering to 0.05 on a busy shared runner is
noise, not a regression).

Baselines live in ``benchmarks/bench_baselines.json``, keyed by regime —
``full`` for the real corpus sizes, ``quick`` for the CI smoke workloads
(tiny populations skew the ratios, so the regimes never share numbers).
The fresh results file records which regime produced it (the ``quick``
flag ``bench_plan_compile`` emits).

Exit status: 0 when every tracked metric holds, 1 on any regression or
missing input.  Update the baselines by copying the printed fresh ratios
after an intentional performance change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = ROOT / "BENCH_plan.json"
DEFAULT_BASELINES = Path(__file__).resolve().parent / "bench_baselines.json"

#: Multiplicative regression budget on every tracked ratio.
DEFAULT_TOLERANCE = 1.3
#: Absolute slack in ratio points, shielding near-zero ratios from noise.
ABS_SLACK = 0.05


def tracked_metrics(results: dict) -> dict[str, float]:
    """The metrics the gate watches.

    Mostly machine-independent ratios; the serve section additionally
    tracks its latency percentiles and peak RSS directly — those are the
    serving gateway's acceptance surface, and the multiplicative budget
    plus regime-matched baselines absorb runner variance.

    Each section is optional: benches can run (and be gated) standalone —
    a baseline with no fresh counterpart still fails, so a section
    silently missing from a full run cannot slip through.
    """
    metrics: dict[str, float] = {}

    if "shard_sweep" in results:
        points = results["shard_sweep"]["points"]
        legacy = next(p for p in points if not p.get("columnar", True))
        mono = next(
            p for p in points if p.get("columnar") and p["shards"] == 1
        )
        sharded = [
            p for p in points if p.get("columnar") and p["shards"] > 1
        ]
        metrics["scan.columnar_mono_over_legacy"] = (
            mono["scan_ms"] / legacy["scan_ms"]
        )
        metrics["scan.columnar_sharded_over_legacy"] = (
            min(p["scan_ms"] for p in sharded) / legacy["scan_ms"]
        )

    if "serving" in results:
        serving = results["serving"]
        metrics["serving.compiled_over_handwritten"] = (
            serving["compiled_ms"] / serving["handwritten_ms"]
        )

    if "social_stage" in results:
        for row in results["social_stage"]["strategies"]:
            metrics[f"social.{row['strategy']}_compiled_over_legacy"] = (
                row["compiled_ms"] / row["legacy_ms"]
            )

    if "serve" in results:
        serve = results["serve"]
        metrics["serve.p95_ms"] = serve["latency_ms"]["p95"]
        metrics["serve.p99_ms"] = serve["latency_ms"]["p99"]
        metrics["serve.peak_rss_mb"] = serve["peak_rss_mb"]
        # sequential rps / gateway rps: grows when the gateway regresses
        metrics["serve.sequential_over_gateway"] = (
            serve["sequential_over_gateway"]
        )
        # deadlined run / undeadlined run on the same stream, no
        # expiries: the no-fault cost of the deadline machinery (target
        # <3%, i.e. a ratio hugging 1.0)
        metrics["serve.deadline_overhead"] = serve["deadline_overhead"]

    if "recovery" in results:
        recovery = results["recovery"]
        # warm first-request latency / cold first-request latency: drifts
        # toward 1.0 when plan-cache warming stops paying for itself
        metrics["recovery.warm_first_over_cold_first"] = (
            recovery["warm_first_over_cold_first"]
        )

    if "multicore" in results:
        multicore = results["multicore"]
        # process backend / thread pool on the big sharded σN sweep:
        # < 1.0 means the slab workers beat the GIL-bound threads
        metrics["multicore.processes_over_threads"] = (
            multicore["processes_over_threads"]
        )
    return metrics


def waived_metrics(results: dict) -> set[str]:
    """Metric names the producing bench declared unjudgeable this run.

    Hardware-conditional claims (the multicore ratio needs ≥4 cores)
    ship a ``waived_metrics`` list inside their results section; the
    gate reports them but neither passes nor fails them.
    """
    waived: set[str] = set()
    for section in results.values():
        if isinstance(section, dict):
            waived.update(section.get("waived_metrics", ()))
    return waived


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS,
                        help="fresh BENCH_plan.json (default: repo root)")
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINES,
                        help="committed baseline ratios")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="multiplicative regression budget (default 1.3)")
    args = parser.parse_args(argv)

    if not args.results.exists():
        print(f"regression gate: missing results file {args.results}")
        return 1
    results = json.loads(args.results.read_text())
    baselines_by_regime = json.loads(args.baselines.read_text())
    regime = "quick" if results.get("quick") else "full"
    baselines = baselines_by_regime.get(regime)
    if baselines is None:
        print(f"regression gate: no '{regime}' baselines in {args.baselines}")
        return 1

    fresh = tracked_metrics(results)
    waived = waived_metrics(results)
    failures = []
    print(f"bench regression gate ({regime} regime, "
          f"tolerance {args.tolerance:g}x + {ABS_SLACK:g} slack)")
    for name, baseline in sorted(baselines.items()):
        got = fresh.get(name)
        if name in waived:
            shown = f"fresh {got:7.4f}" if got is not None else "no value"
            print(f"  {name:<44} {shown}  "
                  "(waived by the producing bench this run)")
            continue
        if got is None:
            failures.append(f"{name}: missing from fresh results")
            continue
        budget = baseline * args.tolerance + ABS_SLACK
        verdict = "ok" if got <= budget else "REGRESSED"
        print(f"  {name:<44} baseline {baseline:7.4f}  "
              f"fresh {got:7.4f}  budget {budget:7.4f}  {verdict}")
        if got > budget:
            failures.append(
                f"{name}: {got:.4f} > budget {budget:.4f} "
                f"(baseline {baseline:.4f})"
            )
    for name in sorted(set(fresh) - set(baselines)):
        print(f"  {name:<44} fresh {fresh[name]:7.4f}  (untracked)")

    if failures:
        print("\nregressions:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall tracked metrics within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())

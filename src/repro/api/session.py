"""The session engine: a warm, incrementally-refreshed serving stack.

One :class:`Session` owns the wired Figure 1 layers — Data Manager at the
bottom, Content Analyzer + Information Discoverer in the middle,
Information Organizer on top — and serves :class:`SearchRequest` after
:class:`SearchRequest` without tearing anything down between queries:

* **incremental refresh** — graph changes (analyses, remote attachment,
  direct Data Manager writes) set a dirty flag; the next query retargets
  the existing components and invalidates only the per-graph caches
  (tf-idf corpus, search indexes) instead of reconstructing the layers;
* **compiled serving** — every request's *whole* pipeline (semantic
  σN⟨C,S⟩ scoping, connection selection, social strategy scoring,
  α-combination) is built as one algebra plan and executed through the
  physical compiler (:mod:`repro.plan`): rule-optimized, lowered with
  cost-based access-path choices — scan vs. the lazily built
  :class:`~repro.indexing.semantic.SemanticItemIndex` for keyword
  scoping, adjacency probe vs. the §6.2 endorsement indexes for friend
  scoring (identical results by eligibility), and a cost-based strategy
  pick under ``strategy="auto"`` — compiled once per plan shape into a
  generation-stamped plan cache, and profiled per operator for
  first-class EXPLAIN (``SearchRequest.explain=True`` →
  ``SearchResponse.plan``);
* **deterministic pagination** — the full combined ranking is a total
  order, so ``page``/``cursor`` windows never duplicate or drop items;
* **batch execution** — :meth:`Session.run_many` evaluates many requests
  against the shared warm state, sequentially or through a caller-supplied
  executor (e.g. ``concurrent.futures.ThreadPoolExecutor``).

§6.2's network-aware structures plug in through :meth:`network_topk`,
which lazily builds (and on graph change, discards) the per-session
:class:`~repro.indexing.inverted.ExactUserIndex` or a cluster-compressed
variant.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, NamedTuple, Sequence

from repro.analysis import ContentAnalyzer
from repro.api.builder import QueryBuilder
from repro.api.request import (
    PageInfo,
    RequestFailure,
    SearchRequest,
    SearchResponse,
    decode_cursor,
    encode_cursor,
)
from repro.core import Id, SocialContentGraph
from repro.discovery import (
    DiscoveryConfig,
    InformationDiscoverer,
    MeaningfulSocialGraph,
    ScoredItem,
    assemble_msg,
    parse_query,
)
from repro.discovery.discoverer import RankedDiscovery
from repro.discovery.query import Query
from repro.errors import QueryError
from repro.indexing import (
    ClusteredIndex,
    ExactUserIndex,
    STRATEGIES as CLUSTERING_STRATEGIES,
    SemanticItemIndex,
    TaggingData,
)
from repro.indexing.topk import QueryStats
from repro.management import DataManager, RemoteSocialSite
from repro.plan import (
    INDEX,
    PlanExecution,
    QueryPlanner,
    SCAN,
    explain_execution,
)
from repro.presentation import (
    HierarchicalPresenter,
    InformationOrganizer,
    OrganizerConfig,
)


@dataclass
class SessionConfig:
    """End-to-end configuration of the stack (formerly SocialScopeConfig)."""

    discovery: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    organizer: OrganizerConfig = field(default_factory=OrganizerConfig)
    #: analyses to run automatically on construction (names from the
    #: ContentAnalyzer registry); empty = none.
    auto_analyses: tuple[str, ...] = ()
    #: graph partitions: >1 backs :meth:`Session.from_graph` with a
    #: :class:`~repro.management.PartitionedGraphStore` and lowers large
    #: base scans to the scattered form.  A session over an existing
    #: Data Manager inherits the manager's own shard count instead.
    shards: int = 1
    #: plan-executor mode: "auto" pools plans past the cost threshold and
    #: escalates shippable scans to the process backend once estimated
    #: rows × shards clear ``CostModel.process_min_rows``; "never" pins
    #: everything sequential, "force" pools unconditionally, "threads"
    #: allows the thread pool but never processes, and "processes" ships
    #: every shippable scan to the shared-memory process workers.
    parallelism: str = "auto"


@dataclass
class SessionStats:
    """Work counters a warm session accumulates (thread-safe increments)."""

    queries: int = 0
    batches: int = 0
    refreshes: int = 0
    #: corpus passes for tf-idf (mirrors SemanticRelevance.builds)
    tfidf_builds: int = 0
    #: semantic index constructions
    index_builds: int = 0
    #: network-aware (§6.2) index constructions
    network_index_builds: int = 0
    #: queries whose candidates came from the semantic index
    index_queries: int = 0
    #: queries that fell back to the scan path
    scan_queries: int = 0
    #: queries whose social stage read a §6.2 endorsement index
    social_index_queries: int = 0
    #: physical plans compiled (plan-cache misses)
    plan_compiles: int = 0
    #: queries served by an already-compiled plan
    plan_cache_hits: int = 0
    #: queries whose plan ran on the worker pool
    parallel_queries: int = 0
    #: queries whose scans shipped to the process backend (subset of
    #: parallel_queries: process runs wrap the thread pool)
    process_queries: int = 0


class _Evaluation(NamedTuple):
    """One request's evaluated state, shared by run/discover/explain."""

    query: Query
    ranking: object
    window: list
    offset: int
    size: int
    total: int
    execution: PlanExecution | None


class Session:
    """A long-lived query session over one social content site."""

    def __init__(
        self,
        data_manager: DataManager,
        config: SessionConfig | None = None,
    ):
        self.config = config or SessionConfig()
        self.data_manager = data_manager
        self.analyzer = ContentAnalyzer(data_manager.graph())
        self.stats = SessionStats()
        self._lock = threading.Lock()
        #: refresh generation — bumped whenever cached per-graph state is
        #: invalidated; embedded in cursors to detect cross-refresh paging
        self.epoch = 0
        #: site incarnation — 0 for a freshly built session, bumped by
        #: every :meth:`restore`; embedded in cursors so pre-crash tokens
        #: cannot alias a restarted epoch counter
        self.boot = 0
        #: recently served plan shapes, recorded for cache warming:
        #: :meth:`save` persists them and :meth:`restore` replays them
        #: through the new session's planner so the first real request
        #: after a restart hits an already-compiled plan
        self._warm_recipes: list[dict[str, object]] = []
        self._dm_version = data_manager.version
        self._dirty = False
        self._semantic_index: SemanticItemIndex | None = None
        self._tagging_data: TaggingData | None = None
        self._network_indexes: dict[str, object] = {}
        self.discoverer = InformationDiscoverer(
            self.analyzer.graph, config=self.config.discovery
        )
        # Declare the session's semantic index to the compiler: provider
        # and scorer stay lazy (nothing builds until a plan takes the
        # index path), but the cost model now has the choice.
        self.discoverer.planner.attach_index(
            self.discoverer.semantic.item_type,
            provider=lambda: self.semantic_index,
            scorer_provider=lambda: self.discoverer.semantic.scorer,
        )
        # Mirror the store's registered attribute indexes into the
        # planner: equality selections on them may lower to the
        # attribute-posting access path (postings are cut per shard view
        # from the live graph, so derived nodes participate too).
        indexed = getattr(data_manager.store, "indexed_attributes", ())
        if indexed:
            self.discoverer.planner.attach_attribute_index(indexed)
        # Physical-layer wiring: the store's partitioning (or an explicit
        # config request) enables sharded scans, and the configured
        # parallelism mode pins the executor choice.
        shards = max(data_manager.num_shards, self.config.shards)
        if shards > 1:
            self.discoverer.planner.attach_shards(shards)
        self.set_parallelism(self.config.parallelism)
        self.organizer = InformationOrganizer(
            self.analyzer.graph, config=self.config.organizer
        )
        for name in self.config.auto_analyses:
            self.analyze(name)

    #: how many plan shapes :meth:`save` persists for cache warming
    _WARM_RECIPE_CAP = 64

    # ------------------------------------------------------------ construction
    @classmethod
    def from_graph(
        cls,
        graph: SocialContentGraph,
        config: SessionConfig | None = None,
    ) -> "Session":
        """Build a session around an existing logical graph."""
        shards = config.shards if config is not None else 1
        dm = DataManager(shards=shards)
        dm.load_graph(graph)
        return cls(dm, config)

    # ------------------------------------------------------------- durability
    def save(self, directory: str | Path) -> dict[str, Any]:
        """Checkpoint the whole serving site into *directory*.

        The data manager writes the per-shard snapshot + rotates its WAL
        (:meth:`~repro.management.DataManager.checkpoint`); the session's
        own state rides along in the manifest's ``extra`` mapping — the
        refresh epoch and boot token (cursor continuity), the analysis
        log (derivations are cheap and re-derivable, so they are re-run
        on restore rather than snapshotted), the planner's learned
        cardinality corrections, and the plan-cache warming recipes.
        """
        self._ensure_fresh()
        with self._lock:
            recipes = [dict(r) for r in self._warm_recipes]
        analyses = list(dict.fromkeys(
            entry.name for entry in self.analyzer.run_log
        ))
        extra: dict[str, Any] = {
            "session": {
                "epoch": self.epoch,
                "boot": self.boot,
                "analyses": analyses,
                "warm_recipes": recipes,
                "feedback": self.planner.feedback.export_state(),
            }
        }
        return self.data_manager.checkpoint(directory, extra=extra)

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        config: SessionConfig | None = None,
        warm: bool = True,
    ) -> "Session":
        """Rebuild a serving session from a site snapshot (warm restart).

        Recovery = snapshot + WAL-tail replay for the data, then session
        continuity: persisted analyses re-run over the recovered graph,
        the refresh epoch fast-forwards (never backwards), the boot token
        bumps so cursors minted by the dead incarnation are rejected with
        a typed :class:`~repro.errors.RestartCursorError`, the learned
        cardinality-feedback table reloads, and — under ``warm`` — the
        persisted plan shapes recompile through this session's planner so
        the first real request is served at learned-cost speed.
        """
        dm, report = DataManager.recover(directory)
        session = cls(dm, config)
        state = report.extra.get("session", {})
        for name in state.get("analyses", ()):
            session.analyze(name)
        session._ensure_fresh()
        session.epoch = max(session.epoch, int(state.get("epoch", 0)))
        session.boot = int(state.get("boot", 0)) + 1
        feedback = state.get("feedback")
        if feedback:
            session.planner.feedback.load_state(feedback)
        if warm:
            session._replay_recipes(state.get("warm_recipes", ()))
        return session

    def _record_recipe_locked(self, request: SearchRequest) -> None:
        """Remember a served plan shape for post-restart cache warming.

        Only structural-free shapes are recorded (a structural
        :class:`~repro.core.Condition` has no stable JSON identity) and
        only JSON-clean user ids; repeats move to the back of the list so
        the cap keeps the most recently served shapes.  Caller holds the
        session lock.
        """
        if request.structural is not None:
            return
        if not isinstance(request.user_id, (str, int)):
            return
        recipe: dict[str, Any] = {
            "user_id": request.user_id,
            "text": request.text,
            "strategy": request.strategy,
            "alpha": request.alpha,
            "k": request.k,
            "use_index": request.use_index,
        }
        if recipe in self._warm_recipes:
            self._warm_recipes.remove(recipe)
        self._warm_recipes.append(recipe)
        del self._warm_recipes[:-self._WARM_RECIPE_CAP]

    def _replay_recipes(
        self, recipes: Iterable[Mapping[str, Any]]
    ) -> None:
        """Compile persisted plan shapes through this session's planner.

        The shared plan cache anchors entries to the serving graph
        *object*, which did not survive the restart — warming therefore
        re-evaluates each recorded shape here, recompiling it into the
        cache under this session's namespace (with the feedback table
        already loaded, so the plans carry learned costs).  Best-effort:
        a recipe that no longer evaluates (user deleted mid-WAL, say) is
        skipped, never fatal.
        """
        kept = [dict(r) for r in recipes][-self._WARM_RECIPE_CAP:]
        with self._lock:
            self._warm_recipes = kept
        for recipe in kept:
            try:
                request = SearchRequest(
                    user_id=recipe["user_id"],
                    text=str(recipe.get("text") or ""),
                    strategy=recipe.get("strategy"),
                    alpha=recipe.get("alpha"),
                    k=recipe.get("k"),
                    use_index=recipe.get("use_index"),
                )
                self._evaluate(request)
            except Exception:
                continue

    # ---------------------------------------------------------------- content
    @property
    def graph(self) -> SocialContentGraph:
        """The current (possibly analysis-enriched) social content graph."""
        return self.analyzer.graph

    def analyze(self, name: str) -> None:
        """Run one Content Analyzer analysis and mark discovery stale."""
        self.analyzer.run(name)
        self.invalidate()

    def attach_remote(self, site: RemoteSocialSite,
                      with_activities: bool = False) -> None:
        """Pull a remote site's social data in (Open Cartel integration).

        Previously-run analyses are re-derived over the expanded graph —
        same policy as the direct-write resync in :meth:`_ensure_fresh`.
        """
        self.data_manager.attach_remote(site, with_activities=with_activities)
        self._resync_from_store()
        self.invalidate()

    def _resync_from_store(self) -> None:
        """Reset the working graph from the store, re-deriving analyses.

        Derivations are re-derivable and marked ``derived_by``; dropping
        them silently would degrade every strategy/grouping relying on
        derived nodes/links (similarity links, topics).
        """
        rerun = list(dict.fromkeys(
            entry.name for entry in self.analyzer.run_log
        ))
        self.analyzer.graph = self.data_manager.graph()
        for name in rerun:
            self.analyzer.run(name)
        self._dm_version = self.data_manager.version

    def invalidate(self) -> None:
        """Flag the upper layers stale; the next query refreshes them.

        Dirty-flag invalidation is the whole point of the session: nothing
        is rebuilt here, and back-to-back invalidations cost nothing.
        """
        self._dirty = True

    def _ensure_fresh(self) -> None:
        """Incremental refresh: retarget components, drop per-graph caches."""
        if self.data_manager.version != self._dm_version:
            # Direct Data Manager writes happened behind the analyzer's
            # back: resync the working graph, re-deriving analyses.
            self._resync_from_store()
            self._dirty = True
        if not self._dirty:
            return
        graph = self.analyzer.graph
        self.discoverer.refresh(graph)
        self.organizer.base_graph = graph
        self._semantic_index = None
        self._tagging_data = None
        self._network_indexes.clear()
        self.epoch += 1
        with self._lock:
            self.stats.refreshes += 1
        self._dirty = False

    # ---------------------------------------------------------------- planning
    @property
    def planner(self) -> QueryPlanner:
        """The session's query planner (owned by the discoverer)."""
        return self.discoverer.planner

    def set_parallelism(self, mode: str) -> None:
        """Re-pin the plan-executor mode on the warm session's planner.

        The serve layer routes through this (rather than reaching into
        the planner) so mode validation lives in one place.
        """
        from repro.plan import PARALLEL_MODES

        if mode not in PARALLEL_MODES:
            raise QueryError(
                f"unknown parallelism {mode!r}; have {PARALLEL_MODES}"
            )
        self.discoverer.planner.parallelism = mode

    def close(self) -> None:
        """Release executor resources held by the warm session.

        Shuts the planner's process workers down and unlinks their
        shared-memory slabs (a no-op when the process backend never
        started).  The session stays usable afterwards — the next
        process-backed query simply pays the worker warm-up again.
        """
        self.discoverer.planner.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---------------------------------------------------------------- indexes
    @property
    def semantic_index(self) -> SemanticItemIndex:
        """The session's semantic inverted index (built lazily, cached)."""
        if self._semantic_index is None:
            semantic = self.discoverer.semantic
            self._semantic_index = SemanticItemIndex(
                self.graph,
                item_type=semantic.item_type,
                scorer=semantic.scorer,  # share idf with the scan path
            )
            with self._lock:
                self.stats.index_builds += 1
        return self._semantic_index

    @property
    def tagging_data(self) -> TaggingData:
        """Materialised §6.2 tagging accessors for the current graph."""
        if self._tagging_data is None:
            self._tagging_data = TaggingData.from_graph(self.graph)
        return self._tagging_data

    def network_topk(
        self,
        user_id: Id,
        keywords: Sequence[str],
        k: int = 10,
        clustering: str | None = None,
        theta: float = 0.3,
    ) -> tuple[list[tuple[Id, float]], QueryStats]:
        """Network-aware tag search through the §6.2 index structures.

        ``clustering=None`` uses the exact per-(tag, user) index; a name
        from :data:`repro.indexing.STRATEGIES` uses the corresponding
        cluster-compressed index.  Indexes build lazily per session and
        are discarded on graph change.
        """
        self._ensure_fresh()
        key = clustering or "exact"
        index = self._network_indexes.get(key)
        if index is None:
            data = self.tagging_data
            if clustering is None:
                index = ExactUserIndex(data)
            else:
                strategy = CLUSTERING_STRATEGIES.get(clustering)
                if strategy is None:
                    raise QueryError(
                        f"unknown clustering {clustering!r}; have "
                        f"{sorted(CLUSTERING_STRATEGIES)}"
                    )
                index = ClusteredIndex(data, strategy(data, theta))
            self._network_indexes[key] = index
            with self._lock:
                self.stats.network_index_builds += 1
        return index.query(user_id, list(keywords), k)

    # ---------------------------------------------------------------- serving
    def query(self, user_id: Id) -> QueryBuilder:
        """Start a fluent query for *user_id* (see :class:`QueryBuilder`)."""
        return QueryBuilder(self, user_id)

    def run(self, request: SearchRequest) -> SearchResponse:
        """Evaluate one structured request into an organized response."""
        self._ensure_fresh()
        return self._run_prepared(request)

    def run_many(
        self,
        requests: Iterable[SearchRequest],
        # anything with `.map(fn, *iterables)`, e.g. a ThreadPoolExecutor
        executor: Executor | None = None,
        isolate_errors: bool = False,
        deadlines: Sequence[float | None] | None = None,
    ) -> list[SearchResponse | RequestFailure]:
        """Evaluate a batch against the shared warm session state.

        The per-session tf-idf corpus, connection state and (when any
        request routes through it) the semantic index are primed *once*
        before execution, so a thread-pool *executor* — anything with an
        ``executor.map(fn, iterable)`` — sees only read-only shared state.
        Responses come back in request order.

        With ``isolate_errors=True`` a request whose evaluation raises
        yields a :class:`RequestFailure` in its slot instead of aborting
        the whole batch — the contract dynamic batching rests on, where
        one batch mixes unrelated tenants and a stale cursor from one must
        not poison the others.  The default (``False``) keeps the historic
        fail-fast behavior.

        *deadlines* (aligned with *requests*) carries each request's
        absolute monotonic deadline into plan execution — the gateway's
        end-to-end budget.  Deadlines are per call, never session state:
        one session serves several concurrent batches.
        """
        batch = list(requests)
        budgets: Sequence[float | None] = (
            list(deadlines) if deadlines is not None else [None] * len(batch)
        )
        if len(budgets) != len(batch):
            raise ValueError(
                f"deadlines length {len(budgets)} != requests {len(batch)}"
            )
        self._ensure_fresh()
        if batch:
            # Prime lazy shared state while still single-threaded: the
            # tf-idf corpus, the planner's statistics, and — when any
            # request may take the index path (a cheap over-approximation
            # of the compiler's eligibility check) — the semantic index.
            _ = self.discoverer.semantic.scorer
            _ = self.planner.stats
            if any(
                r.use_index is not False and r.text and r.structural is None
                for r in batch
            ):
                _ = self.semantic_index
        with self._lock:
            self.stats.batches += 1
        runner = self._run_isolated if isolate_errors else self._run_prepared
        if executor is None:
            responses: list[SearchResponse | RequestFailure] = [
                runner(r, deadline=d) for r, d in zip(batch, budgets)
            ]
        else:
            responses = list(executor.map(runner, batch, budgets))
        return responses

    def _run_isolated(
        self, request: SearchRequest, deadline: float | None = None
    ) -> SearchResponse | RequestFailure:
        """One request under per-request error isolation (see run_many)."""
        try:
            return self._run_prepared(request, deadline=deadline)
        except Exception as exc:
            return RequestFailure(
                request=request,
                kind=type(exc).__name__,
                message=str(exc),
                error=exc,
            )

    # ---------------------------------------------------------------- internals
    @staticmethod
    def _parse(request: SearchRequest) -> Query:
        return parse_query(request.user_id, request.text, request.structural)

    @staticmethod
    def _access_mode(request: SearchRequest) -> str:
        """Map the request's ``use_index`` onto a compiler access mode.

        ``None`` lets the cost model choose; ``True`` forces the index
        wherever *eligible* — structural predicates scope beyond the
        indexed item population, so the compiler still scans them, keeping
        index and scan results identical by construction.
        """
        if request.use_index is None:
            return "auto"
        return INDEX if request.use_index else SCAN

    def _window(self, request: SearchRequest) -> tuple[int, int]:
        """Resolve (offset, size) from page/page_size/k or a cursor.

        A cursor minted before the last refresh is rejected: the ranking
        it pointed into no longer exists, and serving it would break the
        no-duplicates/no-drops pagination guarantee.
        """
        size = (
            request.page_size
            if request.page_size is not None
            else (request.k if request.k is not None
                  else self.config.discovery.max_results)
        )
        if request.cursor is not None:
            offset, cursor_size, epoch = decode_cursor(
                request.cursor, expected_boot=self.boot
            )
            if epoch != self.epoch:
                raise QueryError(
                    f"stale cursor: issued at refresh epoch {epoch}, "
                    f"session is now at {self.epoch}; restart pagination"
                )
            return offset, cursor_size
        return (request.page - 1) * size, size

    def _budgeted(
        self, ranking: RankedDiscovery, request: SearchRequest
    ) -> list[ScoredItem]:
        """Apply the request's k as a hard budget on the ranked list.

        ``k`` caps the ranking even when ``page_size`` drives the window,
        so ``.limit(4).page_size(2)`` means two pages, then exhaustion.
        """
        items = ranking.items
        if request.k is not None:
            items = items[: request.k]
        return items

    def _evaluate(
        self, request: SearchRequest, deadline: float | None = None
    ) -> "_Evaluation":
        """The shared evaluation pipeline: parse → compile → rank → cut.

        Both :meth:`run` and :meth:`discover` go through here, so plan
        compilation, budgeting and windowing cannot drift between them.
        The *whole* pipeline — semantic candidates, connection basis,
        social scoring, α-combination — is one compiled physical plan;
        access-path and strategy routing live in the compiler's cost
        model, not here.
        """
        query = self._parse(request)
        offset, size = self._window(request)
        # Top-k pushdown: an explicit k is a hard result budget, so the
        # ranking stage can stop sorting candidates past it.  Page- and
        # cursor-driven windows without a k may walk arbitrarily deep and
        # keep the full ranking.
        ranking = self.discoverer.rank(
            query,
            strategy=request.strategy,
            alpha=request.alpha,
            access=self._access_mode(request),
            limit=request.k,
            deadline=deadline,
        )
        ranked = self._budgeted(ranking, request)
        window = ranked[offset : offset + size]
        return _Evaluation(
            query=query,
            ranking=ranking,
            window=window,
            offset=offset,
            size=size,
            total=len(ranked),
            execution=ranking.execution,
        )

    def _run_prepared(
        self, request: SearchRequest, deadline: float | None = None
    ) -> SearchResponse:
        ev = self._evaluate(request, deadline=deadline)
        query, window, offset, size, total = (
            ev.query, ev.window, ev.offset, ev.size, ev.total,
        )
        ranking = ev.ranking
        index_used = ev.execution.used_index if ev.execution else False
        msg = assemble_msg(
            self.graph, query, window, ranking.social,
            ranking.used_expert_fallback,
        )
        # When the caller named a window size (k or page_size), the flat
        # list covers the whole window; otherwise the configured flat_k
        # cap applies (the historical facade behavior).
        explicit = request.k is not None or request.page_size is not None
        page = self.organizer.organize(
            msg,
            dimension=request.grouping,
            flat_k=size if explicit else None,
        )
        end = offset + len(window)
        next_cursor = (
            encode_cursor(end, size, self.epoch, boot=self.boot)
            if end < total else None
        )
        info = PageInfo(
            page=offset // size + 1,
            page_size=size,
            offset=offset,
            returned=len(window),
            total_items=total,
            next_cursor=next_cursor,
        )
        with self._lock:
            self._record_recipe_locked(request)
            self.stats.queries += 1
            if index_used:
                self.stats.index_queries += 1
            else:
                self.stats.scan_queries += 1
            if ev.execution is not None:
                if ev.execution.cache_hit:
                    self.stats.plan_cache_hits += 1
                else:
                    self.stats.plan_compiles += 1
                if ev.execution.used_network_index:
                    self.stats.social_index_queries += 1
                executor = ev.execution.executor
                if "pooled" in executor or executor.startswith("processes"):
                    self.stats.parallel_queries += 1
                if executor.startswith("processes"):
                    self.stats.process_queries += 1
            self.stats.tfidf_builds = self.discoverer.semantic.builds
        return SearchResponse(
            request=request,
            page=page,
            page_info=info,
            items=tuple(s.item_id for s in window),
            index_used=index_used,
            resolved={
                "strategy": request.strategy or self.config.discovery.strategy,
                "social_strategy": ranking.social.strategy,
                "alpha": (request.alpha if request.alpha is not None
                          else self.config.discovery.alpha),
                "offset": offset,
                "size": size,
                "epoch": self.epoch,
            },
            plan=(explain_execution(ev.execution)
                  if request.explain and ev.execution is not None else None),
        )

    # ---------------------------------------------------- discovery passthrough
    def discover(self, request: SearchRequest) -> MeaningfulSocialGraph:
        """Evaluate a request only as far as the MSG (no presentation)."""
        self._ensure_fresh()
        ev = self._evaluate(request)
        return assemble_msg(
            self.graph, ev.query, ev.window, ev.ranking.social,
            ev.ranking.used_expert_fallback,
        )

    def explore(self, request: SearchRequest) -> HierarchicalPresenter:
        """Zoomable hierarchical presentation of a request's results."""
        msg = self.discover(request)
        return self.organizer.hierarchy(msg)

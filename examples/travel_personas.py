#!/usr/bin/env python
"""The paper's three motivating scenarios (§2.1) end to end.

* Example 1 — John, baseball fan, searches "Denver attractions";
* Example 2 — Selma, musician with babies, plans a Barcelona family trip;
* Example 3 — Alexia, history student, explores "American history" style
  results grouped by who endorsed them.

Run:  python examples/travel_personas.py
"""

from repro import SocialScope
from repro.workloads import (
    ALEXIA,
    JOHN,
    SELMA,
    TravelSiteConfig,
    build_travel_site,
)


def show_page(title: str, page, max_groups: int = 4, max_entries: int = 3):
    print(f"\n=== {title} ===")
    print(f"grouping dimension: {page.chosen_dimension}"
          + ("  [expert fallback used]" if page.used_expert_fallback else ""))
    for group in page.groups[:max_groups]:
        print(f"  [{group.label}]  (group score {group.group_score:.3f})")
        for entry in group.entries[:max_entries]:
            print(f"    {entry.name:<28} score={entry.score:.3f}")
            if entry.explanation.aggregate_text:
                print(f"      -> {entry.explanation.aggregate_text}")
        if group.explanation:
            print(f"    group: {group.explanation.text}")


site = build_travel_site(TravelSiteConfig(seed=42))
scope = SocialScope.from_graph(site.graph)
print(f"travel site: {site.graph} with personas {site.personas}")

# -------------------------------------------------------------- Example 1
page = scope.search(JOHN, "Denver attractions")
show_page("John: 'Denver attractions'", page)
top = [e.name for e in page.flat[:3]]
print(f"top-3 overall: {top}")
print("(his baseball history pushes ballparks up — pure tf-idf could not "
      "tell Denver's attractions apart)")

# -------------------------------------------------------------- Example 2
page = scope.search(SELMA, "Barcelona family trip with babies")
show_page("Selma: 'Barcelona family trip with babies'", page)
print("(her musician friends are bypassed; parent friends / family-trip "
      "experts provide the social signal)")

# -------------------------------------------------------------- Example 3
page = scope.search(ALEXIA, "history")
show_page("Alexia: 'history'", page)

print("\nzooming into the biggest group (hierarchical presentation, §7.1):")
presenter = scope.explore(ALEXIA, "history")
target = max(presenter.groups, key=lambda g: g.size)
frame = presenter.zoom_in(target.label)
print(f"  zoomed into [{target.label}] -> regrouped by "
      f"{frame.grouping.dimension}:")
for group in frame.grouping.groups[:4]:
    print(f"    [{group.label}] {group.size} items")

# -------------------------------------------------------------- empty query
page = scope.recommend(JOHN, k=5)
print("\nJohn with an empty query (pure social recommendation, §4):")
for entry in page.flat[:5]:
    print(f"  {entry.name:<28} score={entry.score:.3f}")

"""Unit tests for the low-level support modules: attrs, text, catalog, stats."""

from __future__ import annotations

import pytest

from repro.core.attrs import (
    first_value,
    has_type,
    merge_attrs,
    normalize_attrs,
    parse_values,
    text_of,
)
from repro.core.catalog import (
    ACT,
    BELONG,
    CONNECT,
    MATCH,
    TypeCatalog,
)
from repro.core.stats import Card, GraphStats
from repro.core.text import (
    STOPWORDS,
    keyword_terms,
    ngrams,
    term_frequencies,
    term_variants,
    tokenize,
)
from repro.errors import ConditionError


class TestParseValues:
    def test_scalar(self):
        assert parse_values("user") == ("user",)
        assert parse_values(3) == (3,)
        assert parse_values(0.5) == (0.5,)
        assert parse_values(True) == (True,)

    def test_comma_string(self):
        assert parse_values("user, traveler") == ("user", "traveler")
        assert parse_values("a,b , c") == ("a", "b", "c")

    def test_plain_string_with_spaces_not_split(self):
        assert parse_values("near Denver") == ("near Denver",)

    def test_iterables(self):
        assert parse_values(["a", "b"]) == ("a", "b")
        assert parse_values(("x",)) == ("x",)
        assert parse_values({"b", "a"}) == ("a", "b")  # sets sorted

    def test_nested_rejected(self):
        with pytest.raises(ConditionError):
            parse_values([["nested"]])

    def test_unsupported_rejected(self):
        with pytest.raises(ConditionError):
            parse_values(object())


class TestNormalizeMerge:
    def test_normalize_drops_none(self):
        assert normalize_attrs({"a": 1, "b": None}) == {"a": (1,)}

    def test_normalize_rejects_non_string_keys(self):
        with pytest.raises(ConditionError):
            normalize_attrs({1: "x"})

    def test_merge_unions_preserving_order(self):
        merged = merge_attrs({"t": ("a", "b")}, {"t": ("b", "c"), "n": ("x",)})
        assert merged == {"t": ("a", "b", "c"), "n": ("x",)}

    def test_first_value_and_has_type(self):
        attrs = normalize_attrs({"type": "user, vip", "age": 30})
        assert first_value(attrs, "age") == 30
        assert first_value(attrs, "missing", "dflt") == "dflt"
        assert has_type(attrs, "vip") and not has_type(attrs, "item")

    def test_text_of_strings_only(self):
        attrs = normalize_attrs({"name": "John", "age": 30, "tags": ("a", "b")})
        text = text_of(attrs)
        assert "John" in text and "a" in text and "30" not in text


class TestText:
    def test_tokenize(self):
        assert tokenize("Denver, CO: things-to-do!") == [
            "denver", "co", "things", "to", "do"
        ]

    def test_tokenize_stopwords(self):
        assert tokenize("things to do in denver", drop_stopwords=True) == [
            "things", "do", "denver"
        ]
        assert "the" in STOPWORDS

    def test_term_frequencies(self):
        tf = term_frequencies("go go denver")
        assert tf["go"] == 2 and tf["denver"] == 1

    def test_keyword_terms_flattens_phrases(self):
        assert keyword_terms(["near Denver", "baseball"]) == [
            "near", "denver", "baseball"
        ]

    def test_ngrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_term_variants(self):
        assert "attraction" in term_variants("attractions")
        assert "attractions" in term_variants("attraction")
        # short words are not de-pluralised into nonsense
        assert term_variants("gas") == ("gas", "gases") or "ga" not in term_variants("gas")


class TestCatalog:
    def test_base_resolution(self):
        catalog = TypeCatalog()
        assert catalog.base_of(("act", "tag")) == ACT
        assert catalog.base_of(("friend",)) == CONNECT
        assert catalog.base_of(("member",)) == BELONG
        assert catalog.base_of(("sim_item",)) == MATCH
        assert catalog.base_of(("mystery",)) is None

    def test_register_refinement(self):
        catalog = TypeCatalog()
        catalog.register_link_type("endorse", base="act")
        assert catalog.is_activity(("endorse",))

    def test_register_node_type(self):
        catalog = TypeCatalog()
        catalog.register_node_type("event")
        assert "event" in catalog.node_types

    def test_classifiers(self):
        catalog = TypeCatalog()
        assert catalog.is_connection(("connect", "friend"))
        assert catalog.is_topical(("belong",))
        assert catalog.is_match(("match",))
        assert not catalog.is_activity(("friend",))


class TestStats:
    def test_of_graph(self, tiny_travel_graph):
        stats = GraphStats.of(tiny_travel_graph)
        assert stats.num_nodes == 8
        assert stats.node_types["user"] == 4
        assert stats.link_types["visit"] == 10

    def test_type_selectivity(self, tiny_travel_graph):
        from repro.core import Condition

        stats = GraphStats.of(tiny_travel_graph)
        users = stats.condition_selectivity(Condition({"type": "user"}),
                                            of_links=False)
        assert users == pytest.approx(0.5)

    def test_keyword_selectivity_discounts(self, tiny_travel_graph):
        from repro.core import Condition

        stats = GraphStats.of(tiny_travel_graph)
        plain = stats.condition_selectivity(Condition({"type": "user"}), False)
        with_kw = stats.condition_selectivity(
            Condition({"type": "user"}, keywords="x"), False
        )
        assert with_kw < plain

    def test_card_cost(self):
        assert Card(10, 20).cost() == 30
        assert "n/" in repr(Card(1, 2))

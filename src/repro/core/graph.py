"""The social content graph model (paper §4).

    "We adopt a graph model for representing social content.  Intuitively,
    nodes in the graph represent physical and abstract entities like users
    and topics, and links represent connections and activities between
    entities such as friendship and tagging actions.  Each node or link has
    a unique id."

Design notes
------------

* :class:`Node` and :class:`Link` are immutable records.  Algebra operators
  never mutate records in place — they build new records via
  :meth:`Node.with_attrs` / :meth:`Link.with_attrs` — so many graphs can
  safely share the same record objects (cheap copy-on-write semantics).
* :class:`SocialContentGraph` enforces referential integrity: every link's
  endpoints must be present as nodes.  Node Selection (Def 1) produces
  *null graphs* — graphs with nodes and no links — which are perfectly legal.
* Node ids and link ids live in separate namespaces (the paper's examples
  use ``n1``/``l12`` style distinct ids; nothing requires disjointness but
  we keep the two maps separate).
* The graph is a *logical* model: "not tied to any specific physical
  implementation".  The physical layer lives in
  :mod:`repro.management.storage`; this class is the in-memory logical view
  the algebra operates on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.core.attrs import (
    SCORE_ATTR,
    TYPE_ATTR,
    Scalar,
    first_value,
    merge_attrs,
    normalize_attrs,
    parse_values,
    text_of,
)
from repro.core.catalog import DEFAULT_CATALOG, TypeCatalog
from repro.errors import (
    DanglingLinkError,
    DuplicateIdError,
    GraphError,
    UnknownLinkError,
    UnknownNodeError,
)

Id = int | str

SRC = "src"
TGT = "tgt"


class Node:
    """An entity in the social content graph (user, item, topic, group...).

    Attributes are multi-valued and schema-less; the mandatory ``type``
    attribute may hold several values, e.g. ``('user', 'traveler')``.
    """

    __slots__ = ("id", "attrs")

    def __init__(self, id: Id, attrs: Mapping[str, Any] | None = None, **kw: Any):
        object.__setattr__(self, "id", id)
        combined = dict(attrs or {})
        combined.update(kw)
        normalized = normalize_attrs(combined)
        if TYPE_ATTR not in normalized:
            raise GraphError(f"node {id!r} is missing the mandatory 'type' attribute")
        object.__setattr__(self, "attrs", normalized)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Node records are immutable; use with_attrs()")

    def __reduce__(self) -> tuple:
        # Default slots pickling restores via setattr, which the
        # immutability guard blocks; rebuild through the raw constructor
        # instead.  Attrs are already canonical — re-normalising on
        # unpickle would be wasted work and could drift.
        return (_restore_node, (self.id, self.attrs))

    # -- attribute access ----------------------------------------------------

    def values(self, name: str) -> tuple[Scalar, ...]:
        """All values of attribute *name* (empty tuple if absent)."""
        return self.attrs.get(name, ())

    def value(self, name: str, default: Any = None) -> Any:
        """First value of attribute *name*, or *default*."""
        return first_value(self.attrs, name, default)

    @property
    def types(self) -> tuple[Scalar, ...]:
        """The node's type tuple."""
        return self.attrs[TYPE_ATTR]

    def has_type(self, type_name: str) -> bool:
        """True if *type_name* is among the node's types."""
        return type_name in self.attrs[TYPE_ATTR]

    @property
    def score(self) -> float | None:
        """Score attached by a scored selection, if any."""
        value = self.value(SCORE_ATTR)
        return float(value) if value is not None else None

    def text(self) -> str:
        """All string attribute values as one blob (for keyword matching)."""
        return text_of(self.attrs)

    # -- derivation ----------------------------------------------------------

    def with_attrs(self, **updates: Any) -> "Node":
        """Return a copy with the given attributes set (None deletes)."""
        attrs = {k: v for k, v in self.attrs.items()}
        for key, value in updates.items():
            if value is None:
                attrs.pop(key, None)
            else:
                attrs[key] = parse_values(value)
        node = Node.__new__(Node)
        object.__setattr__(node, "id", self.id)
        object.__setattr__(node, "attrs", attrs)
        if TYPE_ATTR not in attrs:
            raise GraphError(f"node {self.id!r} cannot drop its 'type' attribute")
        return node

    def _with_normalized(self, updates: Mapping[str, Any]) -> "Node":
        """Hot-path :meth:`with_attrs`: values already canonical tuples.

        Callers guarantee every value is exactly what
        :func:`~repro.core.attrs.parse_values` would produce (or ``None``
        to delete) — the record built here must be indistinguishable from
        the public path's.  Exists because per-result-node normalisation
        dominated the compiled pipeline's profile.
        """
        attrs = dict(self.attrs)
        for key, value in updates.items():
            if value is None:
                attrs.pop(key, None)
            else:
                attrs[key] = value
        node = Node.__new__(Node)
        object.__setattr__(node, "id", self.id)
        object.__setattr__(node, "attrs", attrs)
        return node

    def with_score(self, score: float) -> "Node":
        """Return a copy carrying ``score`` (paper Def 1)."""
        return self.with_attrs(**{SCORE_ATTR: float(score)})

    def merged_with(self, other: "Node") -> "Node":
        """Consolidate with another record of the same id (paper Def 3)."""
        if other.id != self.id:
            raise GraphError(f"cannot consolidate nodes {self.id!r} and {other.id!r}")
        node = Node.__new__(Node)
        object.__setattr__(node, "id", self.id)
        object.__setattr__(node, "attrs", merge_attrs(self.attrs, other.attrs))
        return node

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.id == self.id and other.attrs == self.attrs

    def __hash__(self) -> int:
        return hash(("node", self.id))

    def __repr__(self) -> str:
        type_str = ",".join(str(t) for t in self.types)
        return f"Node({self.id!r}, type={type_str})"


class Link:
    """A directed connection or activity between two nodes.

    ``l12(n1, n2) = {id=12; type='act, tag'; date=...; tags=...}`` in the
    paper's notation becomes ``Link(12, src=1, tgt=2, type='act, tag', ...)``.
    """

    __slots__ = ("id", "src", "tgt", "attrs")

    def __init__(
        self,
        id: Id,
        src: Id,
        tgt: Id,
        attrs: Mapping[str, Any] | None = None,
        **kw: Any,
    ):
        object.__setattr__(self, "id", id)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "tgt", tgt)
        combined = dict(attrs or {})
        combined.update(kw)
        normalized = normalize_attrs(combined)
        if TYPE_ATTR not in normalized:
            raise GraphError(f"link {id!r} is missing the mandatory 'type' attribute")
        object.__setattr__(self, "attrs", normalized)

    @classmethod
    def _from_normalized(
        cls, id: Id, src: Id, tgt: Id, attrs: dict[str, tuple]
    ) -> "Link":
        """Hot-path constructor: *attrs* already canonical (and owned).

        Callers guarantee the dict's values are exactly what
        :func:`~repro.core.attrs.parse_values` would produce, ``type``
        included, and that the dict is not shared — the record built here
        must be indistinguishable from the public constructor's.
        """
        link = cls.__new__(cls)
        object.__setattr__(link, "id", id)
        object.__setattr__(link, "src", src)
        object.__setattr__(link, "tgt", tgt)
        object.__setattr__(link, "attrs", attrs)
        return link

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Link records are immutable; use with_attrs()")

    def __reduce__(self) -> tuple:
        # See Node.__reduce__: slots restore would hit the immutability
        # guard, so unpickling goes through the raw constructor.
        return (_restore_link, (self.id, self.src, self.tgt, self.attrs))

    # -- attribute access ----------------------------------------------------

    def values(self, name: str) -> tuple[Scalar, ...]:
        """All values of attribute *name* (empty tuple if absent)."""
        return self.attrs.get(name, ())

    def value(self, name: str, default: Any = None) -> Any:
        """First value of attribute *name*, or *default*."""
        return first_value(self.attrs, name, default)

    @property
    def types(self) -> tuple[Scalar, ...]:
        """The link's type tuple."""
        return self.attrs[TYPE_ATTR]

    def has_type(self, type_name: str) -> bool:
        """True if *type_name* is among the link's types."""
        return type_name in self.attrs[TYPE_ATTR]

    @property
    def score(self) -> float | None:
        """Score attached by a scored link selection, if any."""
        value = self.value(SCORE_ATTR)
        return float(value) if value is not None else None

    def endpoint(self, direction: str) -> Id:
        """Endpoint in the given direction: ``'src'`` or ``'tgt'``.

        This realises the paper's ``l.δd`` notation.
        """
        if direction == SRC:
            return self.src
        if direction == TGT:
            return self.tgt
        raise GraphError(f"direction must be 'src' or 'tgt', got {direction!r}")

    def other_endpoint(self, direction: str) -> Id:
        """Endpoint opposite to *direction* (the paper's ``l.δd̄``)."""
        return self.endpoint(TGT if direction == SRC else SRC)

    def text(self) -> str:
        """All string attribute values as one blob (for keyword matching)."""
        return text_of(self.attrs)

    # -- derivation ----------------------------------------------------------

    def with_attrs(self, **updates: Any) -> "Link":
        """Return a copy with the given attributes set (None deletes)."""
        attrs = {k: v for k, v in self.attrs.items()}
        for key, value in updates.items():
            if value is None:
                attrs.pop(key, None)
            else:
                attrs[key] = parse_values(value)
        if TYPE_ATTR not in attrs:
            raise GraphError(f"link {self.id!r} cannot drop its 'type' attribute")
        link = Link.__new__(Link)
        object.__setattr__(link, "id", self.id)
        object.__setattr__(link, "src", self.src)
        object.__setattr__(link, "tgt", self.tgt)
        object.__setattr__(link, "attrs", attrs)
        return link

    def with_score(self, score: float) -> "Link":
        """Return a copy carrying ``score`` (paper Def 2)."""
        return self.with_attrs(**{SCORE_ATTR: float(score)})

    def merged_with(self, other: "Link") -> "Link":
        """Consolidate with another record of the same id (paper Def 3)."""
        if other.id != self.id:
            raise GraphError(f"cannot consolidate links {self.id!r} and {other.id!r}")
        if (other.src, other.tgt) != (self.src, self.tgt):
            raise GraphError(
                f"link {self.id!r} has conflicting endpoints across graphs"
            )
        link = Link.__new__(Link)
        object.__setattr__(link, "id", self.id)
        object.__setattr__(link, "src", self.src)
        object.__setattr__(link, "tgt", self.tgt)
        object.__setattr__(link, "attrs", merge_attrs(self.attrs, other.attrs))
        return link

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Link)
            and other.id == self.id
            and other.src == self.src
            and other.tgt == self.tgt
            and other.attrs == self.attrs
        )

    def __hash__(self) -> int:
        return hash(("link", self.id))

    def __repr__(self) -> str:
        type_str = ",".join(str(t) for t in self.types)
        return f"Link({self.id!r}, {self.src!r}->{self.tgt!r}, type={type_str})"


def _restore_node(id: Id, attrs: dict[str, Any]) -> Node:
    """Unpickle target of :meth:`Node.__reduce__` (raw constructor)."""
    node = Node.__new__(Node)
    object.__setattr__(node, "id", id)
    object.__setattr__(node, "attrs", attrs)
    return node


def _restore_link(id: Id, src: Id, tgt: Id, attrs: dict[str, Any]) -> Link:
    """Unpickle target of :meth:`Link.__reduce__` (raw constructor)."""
    return Link._from_normalized(id, src, tgt, attrs)


class SocialContentGraph:
    """A logical social content graph: id-keyed nodes and links + adjacency.

    Instances behave like immutable values from the algebra's point of view:
    operators construct new graphs rather than mutating inputs.  Mutating
    methods (:meth:`add_node`, :meth:`add_link`, ...) exist for *construction*
    (workload generators, the Data Manager) and for incremental maintenance.
    """

    # __weakref__ lets the shared plan cache anchor entries to the graph
    # object they were compiled against without keeping it alive.
    __slots__ = ("_nodes", "_links", "_out", "_in", "_mutations", "catalog",
                 "__weakref__")

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        links: Iterable[Link] = (),
        catalog: TypeCatalog | None = None,
    ):
        self._nodes: dict[Id, Node] = {}
        self._links: dict[Id, Link] = {}
        self._out: dict[Id, set[Id]] = {}
        self._in: dict[Id, set[Id]] = {}
        self._mutations = 0
        self.catalog = catalog if catalog is not None else DEFAULT_CATALOG
        for node in nodes:
            self.add_node(node)
        for link in links:
            self.add_link(link)

    @property
    def mutation_epoch(self) -> int:
        """Monotone write counter — bumps on every mutating call.

        The *shared* clock derived state hangs off: anything stamped with
        ``(graph identity, mutation_epoch)`` — compiled plans in the
        process-wide cache, most importantly — is valid exactly until the
        graph object changes content, and every consumer of the same
        graph object agrees on the stamp (planner-local counters do not).
        """
        return self._mutations

    def advance_mutation_epoch(self, floor: int) -> None:
        """Fast-forward the write counter to at least *floor*.

        Recovery continuity: a graph rebuilt from a snapshot starts its
        counter at the number of records replayed into it, which can fall
        *below* the pre-crash value — any derived state stamped with
        ``(generation, mutation_epoch)`` that outlived the process (or a
        recovered peer's) could then alias a fresh epoch.  The recovery
        path fast-forwards past the persisted pre-crash epoch so stamps
        stay monotone across restarts.  The counter never moves backwards.
        """
        if floor < 0:
            raise GraphError(
                f"mutation epoch floor must be non-negative, got {floor!r}"
            )
        self._mutations = max(self._mutations, floor)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------

    def add_node(self, node: Node | None = None, /, **kw: Any) -> Node:
        """Add (or consolidate) a node.  Returns the stored record.

        Accepts either a prebuilt :class:`Node` or keyword arguments
        including ``id`` and ``type``.  Adding a node whose id already
        exists consolidates attributes (union of values) per Def 3.
        """
        if node is None:
            if "id" not in kw:
                raise GraphError("add_node requires a Node or an id= keyword")
            node = Node(kw.pop("id"), kw)
        elif kw:
            raise GraphError("pass either a Node or keyword attributes, not both")
        self._mutations += 1
        existing = self._nodes.get(node.id)
        if existing is not None:
            node = existing.merged_with(node)
        self._nodes[node.id] = node
        self._out.setdefault(node.id, set())
        self._in.setdefault(node.id, set())
        return node

    def add_link(self, link: Link | None = None, /, **kw: Any) -> Link:
        """Add (or consolidate) a link.  Endpoints must already exist.

        Accepts either a prebuilt :class:`Link` or keywords including
        ``id``, ``src``, ``tgt`` and ``type``.
        """
        if link is None:
            missing = {"id", "src", "tgt"} - kw.keys()
            if missing:
                raise GraphError(f"add_link missing required keywords: {missing}")
            link = Link(kw.pop("id"), kw.pop("src"), kw.pop("tgt"), kw)
        elif kw:
            raise GraphError("pass either a Link or keyword attributes, not both")
        for endpoint in (link.src, link.tgt):
            if endpoint not in self._nodes:
                raise DanglingLinkError(link.id, endpoint)
        self._mutations += 1
        existing = self._links.get(link.id)
        if existing is not None:
            link = existing.merged_with(link)
        self._links[link.id] = link
        # setdefault: nodes adopted through the bulk null-graph path carry
        # no adjacency slots until a link actually needs one
        self._out.setdefault(link.src, set()).add(link.id)
        self._in.setdefault(link.tgt, set()).add(link.id)
        return link

    def _adopt_fresh_node(self, node: Node) -> None:
        """Hot-path :meth:`add_node` for an id the caller knows is absent.

        Skips the consolidation lookup; callers (operator result emitters
        iterating a deduplicated population) guarantee uniqueness, or the
        graph's node map silently drops the earlier record.  Adjacency
        slots are allocated lazily by the link writers, so a null-graph
        result pays one dict insert per node and nothing else.
        """
        self._mutations += 1
        self._nodes[node.id] = node

    def _adopt_fresh_link(self, link: Link) -> None:
        """Hot-path :meth:`add_link`: unique id, endpoints known present."""
        self._mutations += 1
        self._links[link.id] = link
        self._out.setdefault(link.src, set()).add(link.id)
        self._in.setdefault(link.tgt, set()).add(link.id)

    def remove_link(self, link_id: Id) -> Link:
        """Remove and return a link."""
        link = self._links.pop(link_id, None)
        if link is None:
            raise UnknownLinkError(link_id)
        self._mutations += 1
        out = self._out.get(link.src)
        if out is not None:
            out.discard(link_id)
        incoming = self._in.get(link.tgt)
        if incoming is not None:
            incoming.discard(link_id)
        return link

    def remove_node(self, node_id: Id) -> Node:
        """Remove a node and all incident links; returns the node."""
        node = self._nodes.pop(node_id, None)
        if node is None:
            raise UnknownNodeError(node_id)
        self._mutations += 1
        incident = set(self._out.get(node_id, ())) | set(self._in.get(node_id, ()))
        for link_id in incident:
            if link_id in self._links:
                self.remove_link(link_id)
        self._out.pop(node_id, None)
        self._in.pop(node_id, None)
        return node

    def replace_node(self, node: Node) -> None:
        """Swap in a new record for an existing node id (adjacency kept)."""
        if node.id not in self._nodes:
            raise UnknownNodeError(node.id)
        self._mutations += 1
        self._nodes[node.id] = node

    def replace_link(self, link: Link) -> None:
        """Swap in a new record for an existing link id (endpoints fixed)."""
        old = self._links.get(link.id)
        if old is None:
            raise UnknownLinkError(link.id)
        if (old.src, old.tgt) != (link.src, link.tgt):
            raise GraphError("replace_link cannot change endpoints")
        self._mutations += 1
        self._links[link.id] = link

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def node(self, node_id: Id) -> Node:
        """The node with the given id (raises UnknownNodeError)."""
        node = self._nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(node_id)
        return node

    def link(self, link_id: Id) -> Link:
        """The link with the given id (raises UnknownLinkError)."""
        link = self._links.get(link_id)
        if link is None:
            raise UnknownLinkError(link_id)
        return link

    def has_node(self, node_id: Id) -> bool:
        """True if a node with this id exists."""
        return node_id in self._nodes

    def has_link(self, link_id: Id) -> bool:
        """True if a link with this id exists."""
        return link_id in self._links

    def nodes(self) -> Iterator[Node]:
        """Iterate over all node records."""
        return iter(self._nodes.values())

    def links(self) -> Iterator[Link]:
        """Iterate over all link records."""
        return iter(self._links.values())

    def node_ids(self) -> set[Id]:
        """Set of node ids (fresh set, safe to mutate)."""
        return set(self._nodes.keys())

    def link_ids(self) -> set[Id]:
        """Set of link ids (fresh set, safe to mutate)."""
        return set(self._links.keys())

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Number of links."""
        return len(self._links)

    def is_null_graph(self) -> bool:
        """True when the graph has no links (Node Selection output)."""
        return not self._links

    def is_empty(self) -> bool:
        """True when the graph has neither nodes nor links."""
        return not self._nodes and not self._links

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def out_links(self, node_id: Id) -> Iterator[Link]:
        """Links whose ``src`` is *node_id*."""
        for link_id in self._out.get(node_id, ()):
            yield self._links[link_id]

    def in_links(self, node_id: Id) -> Iterator[Link]:
        """Links whose ``tgt`` is *node_id*."""
        for link_id in self._in.get(node_id, ()):
            yield self._links[link_id]

    def incident_links(self, node_id: Id) -> Iterator[Link]:
        """All links touching *node_id* (each yielded once)."""
        seen: set[Id] = set()
        for link in self.out_links(node_id):
            seen.add(link.id)
            yield link
        for link in self.in_links(node_id):
            if link.id not in seen:
                yield link

    def out_degree(self, node_id: Id) -> int:
        """Number of outgoing links."""
        return len(self._out.get(node_id, ()))

    def in_degree(self, node_id: Id) -> int:
        """Number of incoming links."""
        return len(self._in.get(node_id, ()))

    def successors(self, node_id: Id) -> set[Id]:
        """Target node ids of outgoing links."""
        return {self._links[lid].tgt for lid in self._out.get(node_id, ())}

    def predecessors(self, node_id: Id) -> set[Id]:
        """Source node ids of incoming links."""
        return {self._links[lid].src for lid in self._in.get(node_id, ())}

    def neighbors(self, node_id: Id) -> set[Id]:
        """Union of successors and predecessors."""
        return self.successors(node_id) | self.predecessors(node_id)

    # ------------------------------------------------------------------
    # Derivation helpers used by the algebra
    # ------------------------------------------------------------------

    def copy(self) -> "SocialContentGraph":
        """Shallow copy sharing immutable node/link records."""
        out = SocialContentGraph(catalog=self.catalog)
        out._nodes = dict(self._nodes)
        out._links = dict(self._links)
        out._out = {k: set(v) for k, v in self._out.items()}
        out._in = {k: set(v) for k, v in self._in.items()}
        return out

    def null_graph(self, nodes: Iterable[Node]) -> "SocialContentGraph":
        """A graph with the given nodes and no links (Def 1 output shape)."""
        out = SocialContentGraph(catalog=self.catalog)
        for node in nodes:
            out.add_node(node)
        return out

    def null_graph_unique(self, nodes: Iterable[Node]) -> "SocialContentGraph":
        """:meth:`null_graph` for a population the caller knows is id-unique.

        The bulk form behind selection results: one dict comprehension
        instead of a consolidation probe plus adjacency allocation per
        node.  Callers iterating a graph's own node map (every selection
        kernel) satisfy the uniqueness contract by construction; with
        duplicate ids the last record would silently win where
        :meth:`null_graph` would consolidate.
        """
        out = SocialContentGraph(catalog=self.catalog)
        out._nodes = {node.id: node for node in nodes}
        out._mutations = len(out._nodes)
        return out

    def subgraph_from_links(self, links: Iterable[Link]) -> "SocialContentGraph":
        """The subgraph *induced by links*: links + their endpoint nodes.

        This is the output shape of Link Selection (Def 2) and Link-Driven
        Minus (Def 4): "nodes consist precisely of those nodes which are
        induced by the set of links".
        """
        out = SocialContentGraph(catalog=self.catalog)
        for link in links:
            for endpoint in (link.src, link.tgt):
                if not out.has_node(endpoint):
                    out.add_node(self.node(endpoint))
            out.add_link(link)
        return out

    def induced_subgraph(self, node_ids: Iterable[Id]) -> "SocialContentGraph":
        """The subgraph induced by *node_ids*: those nodes plus every link
        whose two endpoints are both retained."""
        keep = set(node_ids)
        out = SocialContentGraph(catalog=self.catalog)
        for node_id in keep:
            if self.has_node(node_id):
                out.add_node(self.node(node_id))
        for link in self.links():
            if link.src in keep and link.tgt in keep:
                out.add_link(link)
        return out

    def filter_nodes(self, predicate: Callable[[Node], bool]) -> list[Node]:
        """All nodes satisfying *predicate* (evaluation helper)."""
        return [n for n in self.nodes() if predicate(n)]

    def filter_links(self, predicate: Callable[[Link], bool]) -> list[Link]:
        """All links satisfying *predicate* (evaluation helper)."""
        return [l for l in self.links() if predicate(l)]

    # ------------------------------------------------------------------
    # Overlay views (paper §4: activity / network / topical sub-graphs)
    # ------------------------------------------------------------------

    def activity_graph(self) -> "SocialContentGraph":
        """The overlay of user activities on items (``act``-based links)."""
        return self.subgraph_from_links(
            l for l in self.links() if self.catalog.is_activity(l.types)
        )

    def network_graph(self) -> "SocialContentGraph":
        """The overlay of social connections (``connect``-based links)."""
        return self.subgraph_from_links(
            l for l in self.links() if self.catalog.is_connection(l.types)
        )

    def topical_graph(self) -> "SocialContentGraph":
        """The overlay of topic/group memberships (``belong``-based links)."""
        return self.subgraph_from_links(
            l for l in self.links() if self.catalog.is_topical(l.types)
        )

    # ------------------------------------------------------------------
    # Typed convenience iterators
    # ------------------------------------------------------------------

    def nodes_of_type(self, type_name: str) -> Iterator[Node]:
        """All nodes whose type tuple contains *type_name*."""
        return (n for n in self.nodes() if n.has_type(type_name))

    def links_of_type(self, type_name: str) -> Iterator[Link]:
        """All links whose type tuple contains *type_name*."""
        return (l for l in self.links() if l.has_type(type_name))

    # ------------------------------------------------------------------
    # Equality / repr
    # ------------------------------------------------------------------

    def same_as(self, other: "SocialContentGraph") -> bool:
        """Structural equality: same node/link ids with equal records."""
        if self._nodes.keys() != other._nodes.keys():
            return False
        if self._links.keys() != other._links.keys():
            return False
        for node_id, node in self._nodes.items():
            if other._nodes[node_id] != node:
                return False
        for link_id, link in self._links.items():
            if other._links[link_id] != link:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SocialContentGraph) and self.same_as(other)

    def __hash__(self) -> int:  # graphs are mutable containers
        raise TypeError("SocialContentGraph is unhashable")

    def __repr__(self) -> str:
        return f"SocialContentGraph(nodes={self.num_nodes}, links={self.num_links})"

    def __contains__(self, record: object) -> bool:
        if isinstance(record, Node):
            stored = self._nodes.get(record.id)
            return stored is not None and stored == record
        if isinstance(record, Link):
            stored = self._links.get(record.id)
            return stored is not None and stored == record
        return False


def graph_from_edges(
    edges: Iterable[tuple[Id, Id]],
    node_type: str = "item",
    link_type: str = "connect",
) -> SocialContentGraph:
    """Build a simple graph from (src, tgt) pairs — mirrors the paper's
    ``G1 = {(a, b), (a, c), (b, c)}`` notation used around Def 4.

    Link ids are the ``(src, tgt)`` tuples rendered as ``'src->tgt'`` strings
    so that two graphs built this way agree on link ids, as the set-operator
    examples require.
    """
    graph = SocialContentGraph()
    for src, tgt in edges:
        for node_id in (src, tgt):
            if not graph.has_node(node_id):
                graph.add_node(Node(node_id, type=node_type))
        graph.add_link(Link(f"{src}->{tgt}", src, tgt, type=link_type))
    return graph

"""Structural plan keys: the cacheable extension of ``same_expr``."""

from __future__ import annotations

from repro.core import Condition, SocialContentGraph, input_graph, literal, plan_key
from repro.core.conditions import Lambda


def keyword_plan(text: str, scorer=None):
    return input_graph("G").select_nodes(
        Condition({"type": "item"}, keywords=text), scorer
    )


class TestPlanKey:
    def test_independently_built_identical_plans_share_a_key(self):
        # The property same_expr cannot give (it compares parameters by
        # identity) and the plan cache needs: rebuilt-per-request plans hit.
        assert plan_key(keyword_plan("denver baseball")) == plan_key(
            keyword_plan("denver baseball")
        )

    def test_keys_are_hashable(self):
        assert {plan_key(keyword_plan("a")), plan_key(keyword_plan("a"))}

    def test_different_keywords_differ(self):
        assert plan_key(keyword_plan("denver")) != plan_key(keyword_plan("boulder"))

    def test_different_operators_differ(self):
        G = input_graph("G")
        assert plan_key(G.select_nodes({"type": "item"})) != plan_key(
            G.select_links({"type": "item"})
        )

    def test_structure_reaches_the_key(self):
        G = input_graph("G")
        a = G.select_links({"type": "friend"}).union(G)
        b = G.union(G.select_links({"type": "friend"}))
        assert plan_key(a) != plan_key(b)

    def test_scorer_identity_distinguishes(self):
        scorer = lambda element, keywords: 1.0
        assert plan_key(keyword_plan("x", scorer)) != plan_key(keyword_plan("x"))

    def test_lambda_predicates_never_collide_by_label(self):
        # Two different functions under Lambda's default "λ" repr must not
        # share a key — a false hit would serve the wrong plan.
        p1 = Lambda(lambda e: True)
        p2 = Lambda(lambda e: False)
        a = input_graph("G").select_nodes(Condition(predicates=(p1,)))
        b = input_graph("G").select_nodes(Condition(predicates=(p2,)))
        assert plan_key(a) != plan_key(b)

    def test_literal_graphs_key_by_identity(self):
        g1, g2 = SocialContentGraph(), SocialContentGraph()
        assert plan_key(literal(g1)) != plan_key(literal(g2))
        assert plan_key(literal(g1)) == plan_key(literal(g1))

"""A failure-rate circuit breaker with half-open recovery probes.

This generalizes the old ``ProcessShardPool.broken`` boolean (which
tripped permanently until a manual ``reset()``) into the standard
three-state machine:

* **closed** — calls flow; outcomes land in a sliding window.
* **open** — tripped: either too many *consecutive* failures or the
  window's failure rate crossed the threshold.  Calls are refused until
  ``cooldown_s`` has elapsed on the injected monotonic clock.
* **half-open** — after the cooldown, up to ``probe_budget`` calls are
  let through as recovery probes.  ``probe_successes`` successful probes
  re-close the circuit (self-healing); any probe failure re-opens it and
  restarts the cooldown.

Every method is safe under concurrent callers: one internal lock guards
all state, and the optional transition callback fires *outside* the
lock so observers may take their own locks freely.  The clock is
injectable (tests drive it by hand); the default is ``time.monotonic``,
which the determinism gate permits in strict modules.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

TransitionCallback = Callable[[str, str, str], None]


@dataclass(frozen=True)
class BreakerStats:
    """A consistent snapshot of one breaker's counters."""

    name: str
    state: str
    failures: int
    successes: int
    consecutive_failures: int
    trips: int
    probes: int
    recoveries: int


class CircuitBreaker:
    """Thread-safe closed → open → half-open → closed failure tracker."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        window: int = 16,
        failure_rate: float = 0.5,
        min_calls: int = 4,
        cooldown_s: float = 0.25,
        probe_budget: int = 1,
        probe_successes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: TransitionCallback | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0.0:
            raise ValueError("cooldown_s must be positive")
        self.name = name
        self.failure_threshold = failure_threshold
        self.failure_rate = failure_rate
        self.min_calls = min_calls
        self.cooldown_s = cooldown_s
        self.probe_budget = probe_budget
        self.probe_successes = probe_successes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._window: Deque[bool] = deque(maxlen=max(window, failure_threshold))
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_at = 0.0
        self._probes_in_flight = 0
        self._probe_wins = 0
        self._failures = 0
        self._successes = 0
        self._trips = 0
        self._probes = 0
        self._recoveries = 0

    # ------------------------------------------------------------- state

    @property
    def state(self) -> str:
        """Current state, promoting open → half-open if the cooldown ran out."""
        events: list[tuple[str, str, str]] = []
        with self._lock:
            state = self._state_locked(events)
        self._fire(events)
        return state

    def _state_locked(self, events: list[tuple[str, str, str]]) -> str:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition_locked(HALF_OPEN, events)
        return self._state

    def _transition_locked(
        self, new_state: str, events: list[tuple[str, str, str]]
    ) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
            self._trips += 1
        elif new_state == HALF_OPEN:
            self._probes_in_flight = 0
            self._probe_wins = 0
            self._half_open_at = self._clock()
        elif new_state == CLOSED:
            self._window.clear()
            self._consecutive_failures = 0
        events.append((self.name, old, new_state))

    def _fire(self, events: list[tuple[str, str, str]]) -> None:
        # delivered outside the lock so observers may take their own
        callback = self._on_transition
        if callback is not None:
            for event in events:
                callback(*event)

    # ------------------------------------------------------------- calls

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open calls count as probes."""
        events: list[tuple[str, str, str]] = []
        with self._lock:
            state = self._state_locked(events)
            if state == CLOSED:
                decision = True
            elif state == OPEN:
                decision = False
            else:  # HALF_OPEN: meter the probes
                if self._probes_in_flight >= self.probe_budget and (
                    self._clock() - self._half_open_at >= self.cooldown_s
                ):
                    # a granted probe never reported back (caller bailed
                    # before exercising the resource) — don't stay
                    # wedged half-open, free the budget after a cooldown
                    self._probes_in_flight = 0
                    self._half_open_at = self._clock()
                if self._probes_in_flight < self.probe_budget:
                    self._probes_in_flight += 1
                    self._probes += 1
                    decision = True
                else:
                    decision = False
        self._fire(events)
        return decision

    def record_success(self) -> None:
        events: list[tuple[str, str, str]] = []
        with self._lock:
            self._successes += 1
            state = self._state_locked(events)
            if state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_wins += 1
                if self._probe_wins >= self.probe_successes:
                    self._recoveries += 1
                    self._transition_locked(CLOSED, events)
            else:
                self._window.append(True)
                self._consecutive_failures = 0
        self._fire(events)

    def record_failure(self) -> None:
        events: list[tuple[str, str, str]] = []
        with self._lock:
            self._failures += 1
            state = self._state_locked(events)
            if state == HALF_OPEN:
                # a failed probe re-opens and restarts the cooldown
                self._transition_locked(OPEN, events)
            elif state == CLOSED:
                self._window.append(False)
                self._consecutive_failures += 1
                if self._tripped_locked():
                    self._transition_locked(OPEN, events)
            # failures while OPEN (in-flight stragglers) just count
        self._fire(events)

    def _tripped_locked(self) -> bool:
        if self._consecutive_failures >= self.failure_threshold:
            return True
        if len(self._window) >= self.min_calls:
            rate = self._window.count(False) / len(self._window)
            return rate >= self.failure_rate
        return False

    # --------------------------------------------------------- overrides

    def force_open(self) -> None:
        """Trip immediately (e.g. an unrecoverable setup failure)."""
        events: list[tuple[str, str, str]] = []
        with self._lock:
            self._transition_locked(OPEN, events)
        self._fire(events)

    def reset(self) -> None:
        """Manually re-close, clearing history (the old ``pool.reset()``)."""
        events: list[tuple[str, str, str]] = []
        with self._lock:
            self._transition_locked(CLOSED, events)
        self._fire(events)

    # ------------------------------------------------------------- stats

    def stats(self) -> BreakerStats:
        events: list[tuple[str, str, str]] = []
        with self._lock:
            state = self._state_locked(events)
            snapshot = BreakerStats(
                name=self.name,
                state=state,
                failures=self._failures,
                successes=self._successes,
                consecutive_failures=self._consecutive_failures,
                trips=self._trips,
                probes=self._probes,
                recoveries=self._recoveries,
            )
        self._fire(events)
        return snapshot

"""Experiment S1 — the serving gateway under power-law load.

The serving question, quantified: with many concurrent tenants replaying
the paper's skewed traffic shape (hot queries × heavy tenants), what do
admission control and dynamic plan-key batching buy over the naive
one-fresh-session-per-request loop?

Measured on one closed-loop run (``repro.serve.loadgen``):

* end-to-end latency distribution (p50/p95/p99) through the gateway;
* throughput vs. the sequential per-request baseline on the *same*
  request stream prefix;
* the batch-size histogram and the hot keys' mean batch size — the
  direct evidence that same-plan requests actually coalesced;
* shed rate and peak RSS.

Results merge into ``BENCH_plan.json`` under ``"serve"`` (this file runs
after ``bench_plan_compile``, which rewrites the artifact from scratch);
``check_bench_regression.py`` gates p95/p99, peak RSS, and the
sequential/gateway throughput ratio against committed baselines.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import Session
from repro.serve.gateway import GatewayConfig
from repro.serve.loadgen import (
    DEFAULT_LOAD_ADMISSION,
    HarnessConfig,
    LoadMix,
    LoadMixConfig,
    run_closed_loop,
    run_sequential_baseline,
)
from repro.workloads import WorkloadConfig, build_site

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

RESULTS: dict = {}

SEED = 17


@pytest.fixture(scope="module")
def serve_site(quick):
    users, items = (80, 160) if quick else (400, 800)
    return build_site(WorkloadConfig(num_users=users, num_items=items,
                                     seed=SEED))


@pytest.fixture(scope="module")
def mix(serve_site):
    return LoadMix.for_site(
        serve_site.user_ids, serve_site.categories, LoadMixConfig(seed=SEED)
    )


def test_gateway_under_zipf_load(serve_site, mix, report, quick):
    """The headline run: closed loop at full concurrency, then the naive
    sequential baseline on the same stream prefix."""
    concurrency = 16 if quick else 32
    total = 96 if quick else 384
    baseline_n = 16 if quick else 64

    session = Session.from_graph(serve_site.graph)
    harness = HarnessConfig(concurrency=concurrency, total_requests=total)
    gateway_report = run_closed_loop(session, mix, harness)

    # the naive serving model on the same (seeded) traffic prefix: a
    # fresh Session per request, requests strictly in series
    baseline_stream = mix.stream(baseline_n)
    sequential = run_sequential_baseline(
        session.data_manager, baseline_stream
    )

    ratio = (
        sequential["throughput_rps"] / gateway_report.throughput_rps
        if gateway_report.throughput_rps > 0 else float("inf")
    )
    RESULTS["serve"] = {
        "concurrency": concurrency,
        "requests": total,
        "latency_ms": dict(gateway_report.latency_ms),
        "throughput_rps": gateway_report.throughput_rps,
        "sequential_rps": sequential["throughput_rps"],
        "sequential_over_gateway": ratio,
        "batches": gateway_report.batches,
        "mean_batch_size": gateway_report.mean_batch_size,
        "hot_key_mean_batch_size": gateway_report.hot_key_mean_batch_size,
        "batch_size_histogram": {
            str(k): v
            for k, v in sorted(gateway_report.batch_size_histogram.items())
        },
        "shed_rate": gateway_report.shed_rate,
        "peak_rss_mb": gateway_report.peak_rss_mb,
        "plan_cache": dict(gateway_report.plan_cache),
    }
    latency = gateway_report.latency_ms
    report(
        "",
        f"=== Serving gateway under Zipf load "
        f"({concurrency} clients, {total} requests) ===",
        f"  latency ms:        p50 {latency['p50']:8.2f}   "
        f"p95 {latency['p95']:8.2f}   p99 {latency['p99']:8.2f}",
        f"  gateway:           {gateway_report.throughput_rps:8.1f} req/s"
        f"   ({gateway_report.batches} batches, mean size "
        f"{gateway_report.mean_batch_size:.2f})",
        f"  sequential:        {sequential['throughput_rps']:8.1f} req/s"
        f"   (fresh session per request, {baseline_n} requests)",
        f"  sequential/gateway:{ratio:8.3f}x",
        f"  hot-key batching:  mean {gateway_report.hot_key_mean_batch_size:.2f}"
        f"   shed {gateway_report.shed_rate:.1%}"
        f"   peak RSS {gateway_report.peak_rss_mb:.1f} MiB",
    )

    # every request must be accounted for, in every regime
    assert (
        gateway_report.completed
        + gateway_report.failed
        + gateway_report.shed
        == total
    )
    assert gateway_report.failed == 0
    if not quick:
        # the acceptance criteria: at >=32 concurrent in-flight requests
        # the hot plan keys genuinely batch, and the warm batching
        # gateway beats naive sequential serving outright
        assert gateway_report.hot_key_mean_batch_size > 1.0
        assert (
            gateway_report.throughput_rps > sequential["throughput_rps"]
        )


def test_deadline_overhead(serve_site, report, quick):
    """What do deadlines cost when nothing expires?

    Two closed-loop runs over the *same* seeded request stream on the
    same warm session: one with deadlines disabled (the pre-resilience
    gateway), one with a generous 30s default deadline every request
    carries end to end (timer armed, absolute deadline threaded into the
    plan executor's cooperative checks — the full machinery, zero
    expiries).  The duration ratio is the no-fault deadline tax; the
    design target is <3%, and the regression gate
    (``serve.deadline_overhead``) holds the ratio near 1.0 against the
    committed baseline.
    """
    concurrency = 16 if quick else 32
    total = 96 if quick else 256

    session = Session.from_graph(serve_site.graph)

    def run_once(deadline_s):
        # a fresh same-seed mix per run: the sampler is stateful, and
        # both runs must replay the identical (tenant, request) stream
        mix = LoadMix.for_site(
            serve_site.user_ids, serve_site.categories,
            LoadMixConfig(seed=SEED),
        )
        gateway = GatewayConfig(
            admission=DEFAULT_LOAD_ADMISSION,
            default_deadline_s=deadline_s,
        )
        harness = HarnessConfig(
            concurrency=concurrency, total_requests=total, gateway=gateway
        )
        return run_closed_loop(session, mix, harness)

    run_once(None)  # warm the plan cache so neither timed run compiles
    base = run_once(None)
    deadlined = run_once(30.0)

    overhead = (
        deadlined.duration_s / base.duration_s
        if base.duration_s > 0 else 1.0
    )
    RESULTS.setdefault("serve", {})["deadline_overhead"] = overhead
    report(
        "",
        f"=== Deadline overhead (no expiries, {total} requests) ===",
        f"  no deadlines:      {base.duration_s * 1e3:8.1f} ms",
        f"  30s deadline:      {deadlined.duration_s * 1e3:8.1f} ms",
        f"  overhead ratio:    {overhead:8.3f}x",
    )

    # a generous deadline must never shed, and the machinery must stay
    # cheap — the tight <3% claim lives in the baseline gate, this bound
    # only catches gross regressions above run-to-run noise
    assert deadlined.completed == total
    assert deadlined.shed == 0
    assert overhead < 1.25


def test_emit_bench_json(report, quick):
    """Merge the serve section into BENCH_plan.json (runs last here).

    ``bench_plan_compile`` rewrites the artifact wholesale; this bench
    runs after it in the CI invocation and merges, so it also works
    standalone (fresh file with only the serve section).
    """
    merged: dict = {}
    if OUTPUT.exists():
        merged = json.loads(OUTPUT.read_text())
    merged.update(RESULTS)
    merged["quick"] = bool(quick)
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")
    report("", f"BENCH_plan.json serve section written: {OUTPUT}")
    assert "serve" in merged
    assert merged["serve"]["latency_ms"]["p95"] > 0

"""Plan cache behavior + the result-aliasing regression (defensive results).

The dangerous corner of caching evaluation machinery: a returned graph
that aliases shared state (the environment graph, a literal, anything a
cached plan would hand out again) lets one caller's mutation poison every
later evaluation.  Both ``Expr.evaluate`` and ``PhysicalPlan.execute``
must return graphs the caller owns outright.
"""

from __future__ import annotations

import pytest

from factories import item_graph, social_site_graph
from repro.core import Link, Node, input_graph, literal
from repro.plan import PlanCache, QueryPlanner
from repro.plan.physical import PhysicalPlan


class TestPlanCache:
    def test_hit_requires_matching_generation(self):
        cache = PlanCache()
        cache.put("k", 1, "plan")  # type: ignore[arg-type]
        assert cache.get("k", 1) == "plan"
        assert cache.get("k", 2) is None  # stale entry dropped on lookup
        assert cache.get("k", 1) is None
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 2

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 0, 1)  # type: ignore[arg-type]
        cache.put("b", 0, 2)  # type: ignore[arg-type]
        cache.get("a", 0)     # refresh a; b becomes LRU
        cache.put("c", 0, 3)  # type: ignore[arg-type]
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) == 1
        assert cache.stats.evictions == 1

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_planner_refresh_invalidates_compiled_plans(self):
        planner = QueryPlanner(item_graph())
        expr = input_graph("G").select_nodes({"type": "item"})
        _, hit0 = planner.compile(expr)
        _, hit1 = planner.compile(expr)
        assert (hit0, hit1) == (False, True)
        planner.refresh(item_graph())
        _, hit2 = planner.compile(expr)
        assert hit2 is False  # generation bumped: recompiled

    def test_cached_plan_object_is_reused(self):
        planner = QueryPlanner(item_graph())
        expr = input_graph("G").select_nodes({"type": "item"})
        plan_a, _ = planner.compile(expr)
        plan_b, _ = planner.compile(expr)
        assert plan_a is plan_b
        assert isinstance(plan_a, PhysicalPlan)


class TestEvaluateAliasing:
    def test_identity_plan_result_is_a_defensive_copy(self):
        g = item_graph()
        result = input_graph("G").evaluate({"G": g})
        assert result.same_as(g) and result is not g
        result.add_node(Node("intruder", type="item"))
        assert not g.has_node("intruder")

    def test_literal_root_result_is_defensive(self):
        g = item_graph()
        result = literal(g).evaluate({})
        result.remove_node(0)
        assert g.has_node(0)

    def test_idempotence_rewrite_cannot_leak_the_env_graph(self):
        from repro.core import optimize

        g = item_graph()
        G = input_graph("G")
        optimized, _ = optimize(G.union(G))  # ⇒ G by idempotence
        result = optimized.evaluate({"G": g})
        result.add_node(Node("intruder", type="item"))
        assert not g.has_node("intruder")

    def test_derived_results_unaffected(self):
        # Normal operator outputs are fresh graphs already; the defensive
        # copy must not trigger (no gratuitous O(n) copies on the hot path).
        g = item_graph()
        expr = input_graph("G").select_nodes({"type": "item"})
        cache: dict = {}
        inner = expr._eval({"G": g}, cache)
        assert expr.evaluate({"G": g}).same_as(inner)
        assert inner is not g


class TestSocialPlanGenerations:
    """A resync can never serve a stale compiled social-stage plan.

    The dangerous sequence: compile the full pipeline (social stage
    included, possibly over the §6.2 endorsement index), mutate the graph
    behind the Data Manager, query again.  Generation stamping must force
    a recompile *and* the network index must rebuild — otherwise the new
    social signal is invisible.
    """

    def _pipeline(self, planner, user="u0", access="auto"):
        from repro.discovery import parse_query

        return planner.discovery_pipeline(
            parse_query(user, ""), alpha=0.0, access=access
        )

    def test_planner_refresh_recompiles_the_social_pipeline(self):
        planner = QueryPlanner(social_site_graph())
        first = self._pipeline(planner)
        again = self._pipeline(planner)
        assert first.cache_hit is False and again.cache_hit is True
        planner.refresh(social_site_graph())
        after = self._pipeline(planner)
        assert after.cache_hit is False  # generation bumped: recompiled

    def test_refresh_rebuilds_the_endorsement_index(self):
        graph = social_site_graph(num_users=4, num_items=4)
        planner = QueryPlanner(graph)
        before = self._pipeline(planner, access="index")
        assert before.plan.uses_network_index
        grown = graph.copy()
        grown.add_node(Node("i-new", type="item", name="brand new"))
        grown.add_link(id="a-new", src="u1", tgt="i-new", type="act, visit")
        planner.refresh(grown)
        after = self._pipeline(planner, access="index")
        assert after.cache_hit is False
        # the rebuilt index sees u1's new endorsement (u0 follows u1)
        assert "i-new" in after.scores()

    def test_datamanager_resync_cannot_serve_a_stale_social_plan(self):
        from repro.api import SearchRequest, Session

        session = Session.from_graph(social_site_graph(num_users=4,
                                                       num_items=4))
        request = SearchRequest(user_id="u0")
        baseline = session.run(request)
        assert "i-new" not in baseline.items
        compiles = session.stats.plan_compiles
        # a direct Data-Manager write behind the session's back
        session.data_manager.add_node(Node("i-new", type="item",
                                           name="brand new"))
        session.data_manager.add_link(Link("a-new", "u1", "i-new",
                                           type="act, visit"))
        refreshed = session.run(request)
        assert session.stats.plan_compiles == compiles + 1
        assert "i-new" in refreshed.items  # friend endorsement visible


class TestPlanCacheAliasing:
    def test_mutating_one_execution_cannot_poison_a_cache_hit(self):
        planner = QueryPlanner(item_graph())
        expr = input_graph("G").select_nodes({"type": "item"})
        first = planner.execute(expr)
        baseline = first.result.copy()
        # a hostile caller mutates everything it was handed
        first.result.add_node(Node("intruder", type="item, evil"))
        for node_id in list(first.result.node_ids()):
            if node_id != "intruder":
                first.result.remove_node(node_id)
        second = planner.execute(expr)
        assert second.cache_hit is True
        assert second.result.same_as(baseline)
        assert not planner.graph.has_node("intruder")

    def test_identity_physical_plan_returns_a_copy(self):
        from repro.core import optimize

        planner = QueryPlanner(item_graph())
        G = input_graph("G")
        execution = planner.execute(G.union(G))  # optimizer folds to input
        execution.result.add_node(Node("intruder", type="item"))
        assert not planner.graph.has_node("intruder")
        repeat = planner.execute(G.union(G))
        assert not repeat.result.has_node("intruder")

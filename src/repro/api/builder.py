"""Fluent query construction over a session.

The builder reads like the browsing interaction it models::

    response = (session.query(john)
                .text("Denver attractions")
                .strategy("cf")
                .limit(10)
                .page(2)
                .run())

Each method sets one :class:`~repro.api.request.SearchRequest` field and
returns the builder; :meth:`build` freezes the request, :meth:`run`
executes it, and :meth:`pages` walks the cursor chain for paginated
browsing sessions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.core import Condition, Id

from repro.api.request import SearchRequest, SearchResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session


class QueryBuilder:
    """Accumulates one request's fields, then builds/runs it."""

    def __init__(self, session: "Session", user_id: Id):
        self._session = session
        self._fields: dict[str, Any] = {"user_id": user_id}

    # -- content ---------------------------------------------------------------
    def text(self, text: str) -> "QueryBuilder":
        """Free-text content keywords ('' keeps recommendation mode)."""
        self._fields["text"] = text
        return self

    def structural(
        self, condition: Condition | Mapping[str, Any]
    ) -> "QueryBuilder":
        """Structural predicates (Boolean scope, §4)."""
        self._fields["structural"] = condition
        return self

    # -- discovery overrides ---------------------------------------------------
    def strategy(self, name: str) -> "QueryBuilder":
        """Social relevance strategy for this request only."""
        self._fields["strategy"] = name
        return self

    def alpha(self, alpha: float) -> "QueryBuilder":
        """Semantic weight α ∈ [0, 1] for this request only."""
        self._fields["alpha"] = alpha
        return self

    def limit(self, k: int) -> "QueryBuilder":
        """Ranked-result budget of the window (the classic top-k)."""
        self._fields["k"] = k
        return self

    def use_index(self, enabled: bool = True) -> "QueryBuilder":
        """Force (or refuse) index-backed candidate generation."""
        self._fields["use_index"] = enabled
        return self

    def explain(self, enabled: bool = True) -> "QueryBuilder":
        """Attach the executed physical plan (EXPLAIN) to the response."""
        self._fields["explain"] = enabled
        return self

    # -- presentation ----------------------------------------------------------
    def group_by(self, dimension: str) -> "QueryBuilder":
        """Force one grouping dimension instead of the §7.1 choice."""
        self._fields["grouping"] = dimension
        return self

    # -- pagination ------------------------------------------------------------
    def page(self, page: int) -> "QueryBuilder":
        """Select the 1-based page of the ranking."""
        self._fields["page"] = page
        return self

    def page_size(self, size: int) -> "QueryBuilder":
        """Window size per page."""
        self._fields["page_size"] = size
        return self

    def cursor(self, cursor: str) -> "QueryBuilder":
        """Continue from an earlier response's ``next_cursor``."""
        self._fields["cursor"] = cursor
        return self

    # -- terminal --------------------------------------------------------------
    def build(self) -> SearchRequest:
        """Freeze the accumulated fields into a request."""
        return SearchRequest(**self._fields)

    def run(self) -> SearchResponse:
        """Build and execute against the owning session."""
        return self._session.run(self.build())

    def pages(self, max_pages: int | None = None) -> Iterator[SearchResponse]:
        """Walk the cursor chain from this request's window onward.

        Yields at most *max_pages* responses (all remaining when None);
        stops at the first window with no continuation.
        """
        response = self.run()
        yielded = 0
        while True:
            yield response
            yielded += 1
            cursor = response.page_info.next_cursor
            if cursor is None or (max_pages is not None and yielded >= max_pages):
                return
            request = response.request.replace(cursor=cursor)
            response = self._session.run(request)

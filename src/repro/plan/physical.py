"""Physical operators: the executable layer below the logical algebra.

The logical plan (:mod:`repro.core.expr`) says *what* to compute; a
physical plan says *how*.  Most operators have exactly one sensible
implementation and lower to :class:`ScanOp`, which delegates to the
logical node's eager compute.  Where a real access-path choice exists —
keyword selection over the indexed item population — the compiler may
lower to :class:`IndexKeywordScanOp`, which reads
:class:`~repro.indexing.semantic.SemanticItemIndex` posting lists instead
of scanning every node (§6.2's "inverted lists are a natural index
structure"), with bit-for-bit identical scores by the index's parity
contract.

Execution profiles itself: every operator records its actual output
cardinality and wall time into the :class:`ExecContext`, so an executed
plan can be rendered EXPLAIN-style with estimated vs. actual cardinalities
per operator (:meth:`PhysicalPlan.render`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.core.expr import Expr, LiteralE, iter_plan_nodes
from repro.core.faults import fault_point
from repro.core.optimizer import OptimizeReport
from repro.core.graph import SocialContentGraph
from repro.core.stats import Card, GraphStats
from repro.errors import DeadlineError, ExpressionError
from repro.plan.columnar import (
    ColumnarShardView,
    ScanProgram,
    VectorCondition,
    union_link_subgraph,
    union_null_graph,
)

#: Access-path tags used in plan rendering and response metadata.
SCAN = "scan"
INDEX = "index"
#: Network-aware (§6.2) access paths of the compiled social stage.
NETWORK_EXACT = "network-exact"
NETWORK_CLUSTERED = "network-clustered"
#: Physical-form tag of the partition-scattered (columnar) scan.
SHARDED = "sharded-scan"
#: Physical-form tag of the attribute-value posting access path.
ATTR_INDEX = "attr-index"

#: The scatter view type (columnar since PR 5); the old name stays the
#: public alias because planners and providers exchange these.
ShardView = ColumnarShardView


@dataclass(frozen=True)
class ShardProfile:
    """One shard's slice of a scattered operator, for EXPLAIN.

    Process-served shards additionally carry the ship/scan split:
    ``ship_s`` is this shard's amortised share of the slab-shipping
    cost (0.0 when the views were already worker-resident) and
    ``scan_s`` the worker-measured kernel time; ``None`` means the
    shard ran in-process and ``elapsed_s`` is the whole story.
    """

    shard: int
    actual: Card
    elapsed_s: float
    worker: str | None = None
    ship_s: float = 0.0
    scan_s: float | None = None


class ExecContext:
    """Mutable per-execution state: inputs, memo, and operator profiles."""

    def __init__(
        self,
        env: Mapping[str, SocialContentGraph],
        index_provider: Callable[[], Any] | None = None,
        network_provider: Callable[[str], Any] | None = None,
        shard_provider: Callable[
            [SocialContentGraph], "Sequence[ShardView] | None"
        ] | None = None,
        attr_provider: Callable[
            [SocialContentGraph, str, Any], "list | None"
        ] | None = None,
    ):
        self.env = env
        self.index_provider = index_provider
        #: variant name ("exact"/"clustered") → §6.2 endorsement index
        self.network_provider = network_provider
        #: base graph → its partitioned node views (None when the graph is
        #: not the one the provider partitions — the op degrades to a scan)
        self.shard_provider = shard_provider
        #: (graph, att, value) → attribute-posting candidate records, or
        #: None when the provider cannot serve the graph — the
        #: attribute-index op then degrades to the scan compute
        self.attr_provider = attr_provider
        #: result-size bound pushed down from the caller (``None`` = no
        #: bound): ranking operators cut their sorted output to the top k
        #: instead of ordering the full candidate set
        self.topk: int | None = None
        #: per-operator results, keyed by physical node identity (the DAG
        #: dedup — shared sub-plans execute once, as in Expr.evaluate)
        self.memo: dict[int, SocialContentGraph] = {}
        #: per-operator (actual cardinality, elapsed seconds)
        self.actuals: dict[int, tuple[Card, float]] = {}
        #: id()s of result graphs aliased straight from env/literal inputs
        self.borrowed: set[int] = set()
        #: id()s of operators that degraded from their planned access path
        #: at runtime (e.g. endorsement merge falling back to the probe)
        self.degraded: set[int] = set()
        #: True while a worker pool is driving this execution — operators
        #: then record which pool thread ran them
        self.pooled = False
        #: operator id → pool-thread name (pooled executions only)
        self.workers: dict[int, str] = {}
        #: operator id → per-shard profiles (scattered operators only)
        self.shard_actuals: dict[int, list[ShardProfile]] = {}
        #: operator id → decoded side output (fused operators hand their
        #: plain-value results to consumers without a graph decode)
        self.payloads: dict[int, Any] = {}
        #: operator id → posting-list length an attribute-index op
        #: gathered (the quantity `attr_value_count` estimates — fed back
        #: as the posting-size correction, NOT the post-residual result)
        self.attr_postings_gathered: dict[int, int] = {}
        #: generation-stamped sub-plan result memo (planner-owned): ops
        #: carrying a ``memo_key`` — deterministic base-graph stages like
        #: the connection basis — reuse results across executions within
        #: one graph generation.  ``None`` disables (custom environments).
        self.result_cache: dict | None = None
        #: operator ids whose result came from the sub-plan memo
        self.subplan_hits: set[int] = set()
        #: process backend for this execution (``None`` = in-process
        #: scans only); scatter operators route shippable programs
        #: through it and gather survivors locally
        self.process_backend: Any | None = None
        #: True once any worker failure degraded this execution to the
        #: in-process path (the executor string reports it)
        self.process_degraded = False
        #: per-operator scratch for multi-phase operators (e.g. the
        #: sharded endorsement merge stashing its entry prelude between
        #: ``subtasks`` and ``finish_subtasks``)
        self.scratch: dict[int, Any] = {}
        #: absolute monotonic deadline for this execution (``None`` = no
        #: deadline — the check is then a single branch).  Cooperative:
        #: checked between operators and between per-shard subtasks, so
        #: one running kernel bounds the expiry lag
        self.deadline: float | None = None
        #: monotonic stamp when execution began (set by ``execute`` when
        #: a deadline is in force; gives ``DeadlineError.elapsed_s``)
        self.deadline_anchor = 0.0
        #: resilience transitions this execution took, in order (e.g.
        #: ``"pool:threads→sequential"``) — surfaced in EXPLAIN
        self.resilience_events: list[str] = []
        #: guards the shard-profile lists under concurrent shard tasks
        self.lock = threading.Lock()

    def check_deadline(self, stage: str | Callable[[], str]) -> None:
        """Cooperative deadline checkpoint — raise if the clock ran out.

        *stage* may be a callable so callers avoid building the label
        string on the (overwhelmingly common) non-expired path.
        """
        if self.deadline is None:
            return
        now = time.monotonic()
        if now < self.deadline:
            return
        label = stage() if callable(stage) else stage
        raise DeadlineError(label, now - self.deadline_anchor)


class PhysicalOp:
    """Base class of executable operators; children execute first."""

    #: access-path tag shown in EXPLAIN output (None = not an access choice)
    access_path: str | None = None

    def __init__(self, logical: Expr, children: Sequence["PhysicalOp"] = ()):
        self.logical = logical
        self.children = tuple(children)
        #: structural key under which this op's result may be memoised
        #: *across* executions of one graph generation (set by the
        #: compiler only for deterministic base-graph stages; ``None``
        #: means never)
        self.memo_key: Any = None

    def estimate(self, stats: GraphStats) -> Card:
        """Estimated *output* cardinality (access-path independent)."""
        return self.logical.estimate(stats)

    def describe(self) -> str:
        """One-line operator description for plan rendering."""
        return self.logical.describe()

    def execute(self, ctx: ExecContext) -> SocialContentGraph:
        """Run this operator sequentially (memoised per execution)."""
        key = id(self)
        if key in ctx.memo:
            return ctx.memo[key]
        inputs = [child.execute(ctx) for child in self.children]
        return self.run_profiled(ctx, inputs)

    def run_profiled(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        """Run over already-evaluated inputs, recording the profile slot.

        The shared leaf of both execution modes: the sequential recursion
        and the pooled scheduler funnel through here, so profiles (and
        the memo contract) cannot drift between them.
        """
        key = id(self)
        if key in ctx.memo:
            return ctx.memo[key]
        memo_key = self.memo_key
        cache = ctx.result_cache if memo_key is not None else None
        if cache is not None:
            cached = cache.get(memo_key)
            if cached is not None:
                ctx.subplan_hits.add(key)
                # cached results are shared across executions: never let
                # a caller mutate one (the root-result copy guard)
                ctx.borrowed.add(id(cached))
                self._record(ctx, cached, 0.0)
                return cached
        ctx.check_deadline(self.describe)
        start = time.perf_counter()
        result = self._run(ctx, inputs)
        elapsed = time.perf_counter() - start
        self._store_result_memo(ctx, result)
        self._record(ctx, result, elapsed)
        return result

    def _store_result_memo(
        self, ctx: ExecContext, result: SocialContentGraph
    ) -> None:
        """Publish a freshly computed result to the sub-plan memo.

        Marks the graph borrowed: the memo now owns it, so if it
        surfaces as the plan result the caller must get a copy (the
        borrow guard) — a hostile mutation cannot poison later
        executions.
        """
        if self.memo_key is not None and ctx.result_cache is not None:
            ctx.result_cache[self.memo_key] = result
            ctx.borrowed.add(id(result))

    def _record(
        self, ctx: ExecContext, result: SocialContentGraph, elapsed: float
    ) -> None:
        key = id(self)
        ctx.memo[key] = result
        ctx.actuals[key] = (Card(result.num_nodes, result.num_links), elapsed)
        if ctx.pooled:
            ctx.workers[key] = threading.current_thread().name

    # -- pooled fan-out protocol (scattered operators override) ---------------

    def subtasks(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> list[Callable[[], Any]] | None:
        """Optional fan-out: independent subtasks the scheduler may pool.

        ``None`` (the default) means the operator runs as one task.  A
        non-empty list means: run every callable (in any order, on any
        worker), then hand the collected results to
        :meth:`finish_subtasks` — which must record the profile slot.
        """
        return None

    def finish_subtasks(
        self,
        ctx: ExecContext,
        inputs: Sequence[SocialContentGraph],
        parts: list,
    ) -> SocialContentGraph:
        """Combine subtask results (only called when subtasks() fanned out)."""
        raise NotImplementedError

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        raise NotImplementedError


class InputOp(PhysicalOp):
    """Fetch a named base graph from the execution environment."""

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        name = self.logical.name  # type: ignore[attr-defined]
        if name not in ctx.env:
            raise ExpressionError(f"no input graph named {name!r} supplied")
        graph = ctx.env[name]
        ctx.borrowed.add(id(graph))
        return graph


class LiteralOp(PhysicalOp):
    """An inline constant graph."""

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        graph = self.logical.graph  # type: ignore[attr-defined]
        ctx.borrowed.add(id(graph))
        return graph


class ScanOp(PhysicalOp):
    """The default physical form: the logical operator's eager compute."""

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        return self.logical._compute(inputs)


class IndexKeywordScanOp(PhysicalOp):
    """σN over the item population served from inverted posting lists.

    Lowered only for keyword selections whose scope is exactly the indexed
    item type and whose scorer is the index's shared tf-idf (checked at
    compile time), so the produced null graph — matching items with their
    scores attached — is record-for-record what :class:`ScanOp` would
    build.  If the index provider disappears between compile and execute,
    the operator degrades to the scan compute rather than failing.
    """

    access_path = INDEX

    def __init__(
        self, logical: Expr, children: Sequence[PhysicalOp], item_type: str
    ):
        super().__init__(logical, children)
        self.item_type = item_type
        self.keywords = logical.condition.keywords  # type: ignore[attr-defined]

    def describe(self) -> str:
        return f"{self.logical.describe()} [index:{self.item_type}]"

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        index = ctx.index_provider() if ctx.index_provider is not None else None
        if index is None:
            return self.logical._compute(inputs)
        graph = inputs[0]
        scores = index.candidates(self.keywords)
        return graph.null_graph(
            graph.node(item).with_score(score)
            for item, score in scores.items()
            if graph.has_node(item)
        )


class _ScatterScanOp(PhysicalOp):
    """Shared machinery of the partition-scattered (columnar) scans.

    One implementation of the scatter protocol — shard-view fetch with
    the degrade check, per-shard kernel timing and :class:`ShardProfile`
    recording, the pooled fan-out (one subtask per shard plus a
    finalizer whose elapsed time is the critical path, not the operator
    sum), and the sequential loop — parameterised by three hooks:
    :meth:`_kernel` (one partition's selection), :meth:`_merge` (parts →
    result graph) and :meth:`_part_card` (a part's profile cardinality).
    The node and link forms differ *only* in those hooks, so a fix to
    the fan-out or profile accounting cannot drift between them.

    ``num_shards == 1`` is the monolithic columnar form: one view, same
    machinery, no scatter overhead.  If the shard provider is missing at
    execution time — or partitions a different graph than the one bound
    in the environment — the operator degrades to the plain scan rather
    than risking drift.
    """

    access_path = SHARDED

    def __init__(self, logical: Expr, children: Sequence[PhysicalOp],
                 num_shards: int, prune_type: Any | None = None):
        super().__init__(logical, children)
        self.num_shards = num_shards
        #: type value the condition pins (conjunctive HasType /
        #: type-equality), enabling partition-bucket pruning; None scans
        #: every row of the shard
        self.prune_type = prune_type
        #: the condition compiled for columnar evaluation (pure function
        #: of the condition — shared across shards and executions)
        self.vector_condition = VectorCondition(
            logical.condition  # type: ignore[attr-defined]
        )

    #: record kind the shipped :class:`ScanProgram` declares
    _program_kind = "nodes"

    # -- hooks the node/link forms implement -----------------------------------

    def _kernel(self, view: ShardView) -> list:
        """Select one partition's matching records."""
        raise NotImplementedError

    def _gather(self, view: ShardView, rows: Sequence[int]) -> list:
        """Materialise worker-returned survivor positions from *view*.

        The process backend ships only the program and receives only
        positions; scoring and record materialisation happen here, on
        the coordinator's identically-ordered view, so the result is
        record-for-record what :meth:`_kernel` would have produced.
        """
        raise NotImplementedError

    def _merge(self, base: SocialContentGraph,
               parts: Sequence[list]) -> SocialContentGraph:
        """Combine per-shard parts into the result graph."""
        raise NotImplementedError

    def _part_card(self, part: list) -> Card:
        """One part's cardinality for its per-shard EXPLAIN row."""
        raise NotImplementedError

    def ship_program(self) -> ScanProgram | None:
        """The picklable scan descriptor, or ``None`` when not shippable.

        Covered scans never ship (the bucket gather is O(answer) locally
        and the columns never run); conditions whose residual closes
        over unpicklable state (lambdas with local captures) stay
        in-process — shippability is decided once per condition and
        cached on the :class:`VectorCondition`.
        """
        if getattr(self, "covered", False):
            return None
        if not self.vector_condition.shippable():
            return None
        return ScanProgram(
            self._program_kind,
            self.logical.condition,  # type: ignore[attr-defined]
        )

    # -- shared scatter protocol -----------------------------------------------

    def _shard_views(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> Sequence[ShardView] | None:
        if ctx.shard_provider is None:
            return None
        return ctx.shard_provider(inputs[0]) or None

    def _scan_shard(
        self, ctx: ExecContext, shard: int, view: ShardView
    ) -> list:
        ctx.check_deadline(lambda: f"{self.describe()} [shard {shard}]")
        fault_point("physical.scan_shard", shard=shard)
        start = time.perf_counter()
        part, worker, ship_s, scan_s = self._scan_shard_backend(
            ctx, shard, view
        )
        if part is None:
            part = self._kernel(view)
            worker = threading.current_thread().name if ctx.pooled else None
            ship_s, scan_s = 0.0, None
        elapsed = time.perf_counter() - start
        with ctx.lock:
            ctx.shard_actuals.setdefault(id(self), []).append(ShardProfile(
                shard=shard,
                actual=self._part_card(part),
                elapsed_s=elapsed,
                worker=worker,
                ship_s=ship_s,
                scan_s=scan_s,
            ))
        return part

    def _scan_shard_backend(
        self, ctx: ExecContext, shard: int, view: ShardView
    ) -> tuple[list | None, str | None, float, float | None]:
        """Try the process backend; ``(None, ...)`` means run in-process.

        Worker failure is *contained*: the execution flips to
        ``process_degraded`` (every remaining shard of every scatter op
        runs the in-process kernel) and the scan proceeds — a poisoned
        worker costs latency, never correctness.
        """
        backend = ctx.process_backend
        if backend is None or ctx.process_degraded:
            return None, None, 0.0, None
        program = self.ship_program()
        if program is None:
            return None, None, 0.0, None
        from repro.plan.parallel import ProcessPoolError

        try:
            rows, ship_s, scan_s, pid = backend.scan(shard, program)
        except ProcessPoolError:
            with ctx.lock:
                ctx.process_degraded = True
            return None, None, 0.0, None
        return self._gather(view, rows), f"pid:{pid}", ship_s, scan_s

    def subtasks(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> list[Callable[[], Any]] | None:
        views = self._shard_views(ctx, inputs)
        if views is None or len(views) < 2:
            return None  # degrade / monolithic-columnar: one plain task
        return [
            (lambda shard=shard, view=view: self._scan_shard(ctx, shard, view))
            for shard, view in enumerate(views)
        ]

    def finish_subtasks(
        self,
        ctx: ExecContext,
        inputs: Sequence[SocialContentGraph],
        parts: list,
    ) -> SocialContentGraph:
        start = time.perf_counter()
        result = self._merge(inputs[0], parts)
        merge_elapsed = time.perf_counter() - start
        with ctx.lock:
            slowest = max(
                (p.elapsed_s for p in ctx.shard_actuals.get(id(self), ())),
                default=0.0,
            )
        self._store_result_memo(ctx, result)
        # critical path, not operator sum: shards overlapped on the pool
        self._record(ctx, result, slowest + merge_elapsed)
        return result

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        views = self._shard_views(ctx, inputs)
        if views is None:
            ctx.degraded.add(id(self))
            return self.logical._compute(inputs)
        parts = [
            self._scan_shard(ctx, shard, view)
            for shard, view in enumerate(views)
        ]
        return self._merge(inputs[0], parts)


class ShardedScanOp(_ScatterScanOp):
    """σN over columnar partition views, scattered and unioned back.

    Lowered for node selections over a base input graph when the planner
    has shard views attached and the population is large enough to pay
    for columnar evaluation.  Each shard task runs the operator's
    precompiled :class:`VectorCondition` over one partition's columns —
    type buckets, dictionary-encoded attribute columns, term postings —
    exchanging compact position sets and gathering records only for the
    survivors, so the union of per-shard results is record-for-record
    the full scan (the parity contract, held by the columnar
    differential suite) while the per-row predicate loop never runs on
    rows the columns excluded.
    """

    def __init__(self, logical: Expr, children: Sequence[PhysicalOp],
                 num_shards: int, prune_type: Any | None = None,
                 covered: bool = False):
        super().__init__(logical, children, num_shards, prune_type)
        #: True when the compiler proved the condition ≡ the type pin
        #: alone (no keywords, no scorer, no further predicates): the
        #: bucket *is* the selection, no per-node test runs at all
        self.covered = covered

    def describe(self) -> str:
        if self.covered:
            prune = f":{self.prune_type}*"
        elif self.prune_type is not None:
            prune = f":{self.prune_type}"
        else:
            prune = ""
        if self.num_shards == 1:
            return f"{self.logical.describe()} [columnar{prune}]"
        return f"{self.logical.describe()} [sharded×{self.num_shards}{prune}]"

    def _kernel(self, view: ShardView) -> list:
        if self.covered:
            # the bucket is the selection, verbatim (and cached: repeats
            # of a covered scan re-serve the materialised list)
            return view.type_bucket_nodes(self.prune_type)
        return self.vector_condition.select(
            view, self.logical.scorer,  # type: ignore[attr-defined]
        )

    def _gather(self, view: ShardView, rows: Sequence[int]) -> list:
        return self.vector_condition.gather_nodes(
            view, rows, self.logical.scorer,  # type: ignore[attr-defined]
        )

    def _merge(self, base: SocialContentGraph,
               parts: Sequence[list]) -> SocialContentGraph:
        return union_null_graph(base, parts)

    def _part_card(self, part: list) -> Card:
        return Card(len(part), 0)


class ShardedLinkScanOp(_ScatterScanOp):
    """σL over the partition views' link populations, merged back.

    The link twin of :class:`ShardedScanOp`: links ride with their source
    node's partition (the store's own placement), each shard task tests
    only its partition-local link-type bucket when the condition pins a
    type, and the merge rebuilds the induced subgraph — selected links
    plus endpoint records pulled from the base graph, since a target may
    live in any shard.  This is the scatter form feeding semi-join
    probes whose left side is a base-graph link selection.
    """

    def describe(self) -> str:
        prune = f":{self.prune_type}" if self.prune_type is not None else ""
        if self.num_shards == 1:
            return f"{self.logical.describe()} [columnar-links{prune}]"
        return (
            f"{self.logical.describe()} "
            f"[sharded-links×{self.num_shards}{prune}]"
        )

    _program_kind = "links"

    def _kernel(self, view: ShardView) -> list:
        return self.vector_condition.select_links(
            view, self.logical.scorer,  # type: ignore[attr-defined]
            prune_type=self.prune_type,
        )

    def _gather(self, view: ShardView, rows: Sequence[int]) -> list:
        return self.vector_condition.gather_links(
            view, rows, self.logical.scorer,  # type: ignore[attr-defined]
        )

    def _merge(self, base: SocialContentGraph,
               parts: Sequence[list]) -> SocialContentGraph:
        return union_link_subgraph(base, parts)

    def _part_card(self, part: list) -> Card:
        return Card(0, len(part))


class AttrIndexScanOp(PhysicalOp):
    """σN served from the registered attribute-value postings.

    Lowered when the selection conjoins an equality on an attribute the
    planner keeps postings for (the Data Manager's registered attribute
    indexes, materialised per shard view) and the estimated posting list
    is cheaper than scanning the population.  The posting set is a
    *superset* of the answer for that one predicate — every other
    conjunct, the keyword scope and the scoring function run row-wise
    over just those candidates, so the result is record-for-record the
    scan's.  Degrades to the scan compute when the provider is missing
    or serves a different graph.
    """

    access_path = ATTR_INDEX

    def __init__(self, logical: Expr, children: Sequence[PhysicalOp],
                 att: str, value: Any):
        super().__init__(logical, children)
        self.att = att
        self.value = value

    def describe(self) -> str:
        return f"{self.logical.describe()} [attr:{self.att}={self.value!r}]"

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        from repro.core.selection import select_matching_nodes

        provider = ctx.attr_provider
        try:
            candidates = (
                provider(inputs[0], self.att, self.value)
                if provider is not None else None
            )
        except DeadlineError:
            raise
        except Exception:
            # a faulting index path degrades to the scan compute — the
            # planner-side breaker decides whether to keep trying the
            # index on later executions
            with ctx.lock:
                ctx.resilience_events.append(f"attr-index:{self.att}→scan")
            candidates = None
        if candidates is None:
            ctx.degraded.add(id(self))
            return self.logical._compute(inputs)
        ctx.attr_postings_gathered[id(self)] = len(candidates)
        part = select_matching_nodes(
            candidates,
            self.logical.condition,  # type: ignore[attr-defined]
            self.logical.scorer,  # type: ignore[attr-defined]
        )
        return inputs[0].null_graph_unique(part)


class FusedSocialCombineOp(PhysicalOp):
    """Social scoring and α-combination fused into one physical operator.

    The two-step pipeline (social stage → combine stage) spent more time
    encoding and re-copying intermediate graphs than computing scores —
    the compiled ``friends`` path benchmarked *slower* than the legacy
    hand-executed one.  When the social stage's result feeds only the
    combination (the overwhelmingly common shape) the compiler fuses the
    pair: scores stay plain dicts until the single output graph is built
    and provenance is encoded once, for surviving items only
    (:func:`repro.core.social.fused_social_combine`).  The endorsement
    -merge (§6.2 network index) forms stay unfused — their access paths
    carry their own runtime-degrade machinery.

    Children are ``(graph, candidates, basis)`` — the social stage's
    inputs; the combination's candidate input is the same sub-plan, DAG
    -shared, so it still executes once.
    """

    def __init__(self, logical: Expr, social: Expr,
                 children: Sequence[PhysicalOp], strategy: str, form: str):
        super().__init__(logical, children)
        self.social = social
        self.strategy = strategy
        #: physical form of the fused social half ("probe" / "group-agg")
        self.form = form

    def describe(self) -> str:
        return f"combine+social⟨{self.strategy}⟩ [fused-{self.form}]"

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        from repro.core.social import fused_social_combine

        graph, candidates, basis = inputs
        result, decoded = fused_social_combine(
            graph,
            candidates,
            basis,
            strategy=self.strategy,
            user_id=self.social.user_id,  # type: ignore[attr-defined]
            alpha=self.logical.alpha,  # type: ignore[attr-defined]
            keywords=self.social.keywords,  # type: ignore[attr-defined]
            sim_threshold=self.social.sim_threshold,  # type: ignore[attr-defined]
            act_type=self.social.act_type,  # type: ignore[attr-defined]
            drop_zero=self.logical.drop_zero,  # type: ignore[attr-defined]
            limit=ctx.topk,
        )
        # the decoded ranking falls out of the fusion for free: hand it to
        # consumers so they can skip re-decoding the result graph
        ctx.payloads[id(self)] = decoded
        return result


class _SocialStageOp(PhysicalOp):
    """Base of the social-stage physical forms.

    The logical node may still say ``"auto"``; the compiler resolves the
    strategy from statistics at lowering time and pins it here, so
    execution and EXPLAIN agree on what actually ran.
    """

    #: short physical-form tag shown in plan rendering
    form = "social"

    def __init__(self, logical: Expr, children: Sequence[PhysicalOp],
                 strategy: str):
        super().__init__(logical, children)
        self.strategy = strategy

    def describe(self) -> str:
        return f"social⟨{self.strategy}⟩ [{self.form}]"

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        return self.logical.compute_resolved(inputs, self.strategy)  # type: ignore[attr-defined]


class SemiJoinProbeOp(_SocialStageOp):
    """Friend/expert endorsement by probing each basis member's adjacency.

    The scan form of the social stage: a semi-join of basis activities
    into the candidate set, aggregated per item — one adjacency probe per
    basis member, Example 4's reading executed directly.
    """

    form = "probe"


class GroupedAggregationOp(_SocialStageOp):
    """Similarity-driven strategies as one grouped aggregation pass.

    Serves ``similar_users`` (Example 5's collaborative filter: group
    activities per user, Jaccard against the querying user, merge
    weighted endorsements) and ``item_based`` (group ``sim_item`` support
    per candidate).
    """

    form = "group-agg"


class EndorsementMergeOp(_SocialStageOp):
    """Friend endorsement served from §6.2 network-aware posting lists.

    Lowered only in the uniform-weight regime (empty-keyword queries,
    every fit 1.0), where the probe's score is exactly
    ``count(friends(u) ∩ actors(i))`` — the stored ``IL^u_k`` score with
    one pseudo-tag.  The exact variant reads the user's list; the
    clustered variant reads the cluster's upper-bound list and rescores
    exactly (the paper's Eq 1 overhead).  If the provider is missing or
    the data regime diverges (multi-activity pairs), the operator degrades
    to the probe compute rather than risking drift.
    """

    def __init__(self, logical: Expr, children: Sequence[PhysicalOp],
                 strategy: str, variant: str, num_shards: int = 1):
        super().__init__(logical, children, strategy)
        self.variant = variant
        #: posting-merge scatter width: ≥2 cuts the user's endorsement
        #: entries by item shard and merges per-shard score maps at the
        #: union, instead of one coordinator-side pass over the full list
        self.num_shards = max(1, num_shards)
        self.access_path = (
            NETWORK_CLUSTERED if variant == "clustered" else NETWORK_EXACT
        )

    @property
    def form(self) -> str:  # type: ignore[override]
        if self.num_shards > 1:
            return f"endorse-merge:{self.variant}×{self.num_shards}"
        return f"endorse-merge:{self.variant}"

    def _prelude(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> tuple | None:
        """Resolve index + entries, or ``None`` (degraded to the probe)."""
        from repro.indexing.endorsement import endorsement_entries

        provider = ctx.network_provider
        index = provider(self.variant) if provider is not None else None
        if index is None:
            ctx.degraded.add(id(self))
            return None
        user = self.logical.user_id  # type: ignore[attr-defined]
        entries = endorsement_entries(index, user)
        if entries is None:  # regime the index cannot serve exactly
            ctx.degraded.add(id(self))
            return None
        candidate_ids = {n.id for n in inputs[1].nodes()}
        basis_members = index.data.basis.get(user, set())
        return index, entries, candidate_ids, basis_members

    def _merge_shard(
        self, ctx: ExecContext, shard: int, prelude: tuple
    ) -> tuple[dict, dict]:
        """Score one item shard's cut of the user's endorsement entries."""
        from repro.core.partition import shard_of
        from repro.indexing.endorsement import ACT_TAG

        index, entries, candidate_ids, basis_members = prelude
        start = time.perf_counter()
        scores: dict = {}
        endorsers: dict = {}
        n = self.num_shards
        for item, score in entries:
            if n > 1 and shard_of(item, n) != shard:
                continue
            if item not in candidate_ids:
                continue
            scores[item] = score
            members = index.data.taggers.get((item, ACT_TAG), set())
            endorsers[item] = {m: 1.0 for m in sorted(members & basis_members,
                                                      key=repr)}
        elapsed = time.perf_counter() - start
        worker = threading.current_thread().name if ctx.pooled else None
        with ctx.lock:
            ctx.shard_actuals.setdefault(id(self), []).append(ShardProfile(
                shard=shard,
                actual=Card(len(scores), 0),
                elapsed_s=elapsed,
                worker=worker,
            ))
        return scores, endorsers

    def _combine(
        self, inputs: Sequence[SocialContentGraph],
        prelude: tuple, parts: Sequence[tuple[dict, dict]],
    ) -> SocialContentGraph:
        from repro.core.social import encode_social_result

        _index, entries, _candidate_ids, _basis = prelude
        merged_scores: dict = {}
        merged_endorsers: dict = {}
        for part_scores, part_endorsers in parts:
            merged_scores.update(part_scores)
            merged_endorsers.update(part_endorsers)
        # Re-key in the posting list's own entry order: the scatter must
        # be bit-identical to the coordinator-side pass, and downstream
        # encode/tie-break behaviour may observe dict order.
        scores = {item: merged_scores[item] for item, _ in entries
                  if item in merged_scores}
        endorsers = {item: merged_endorsers[item] for item in scores}
        # Uniform-weight Selma fallback: an empty endorsement set under an
        # empty query marks the expert fallback (whose expert search over
        # zero query terms yields nothing), exactly as the probe path does.
        return encode_social_result(
            inputs[0], inputs[1], scores, endorsers, {}, self.strategy,
            fallback=not scores,
        )

    def subtasks(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> list[Callable[[], Any]] | None:
        if self.num_shards < 2:
            return None
        prelude = self._prelude(ctx, inputs)
        if prelude is None:
            # plain-task fallback re-resolves the prelude and degrades
            return None
        ctx.scratch[id(self)] = prelude
        return [
            (lambda shard=shard: self._merge_shard(ctx, shard, prelude))
            for shard in range(self.num_shards)
        ]

    def finish_subtasks(
        self,
        ctx: ExecContext,
        inputs: Sequence[SocialContentGraph],
        parts: list,
    ) -> SocialContentGraph:
        prelude = ctx.scratch.pop(id(self))
        start = time.perf_counter()
        result = self._combine(inputs, prelude, parts)
        merge_elapsed = time.perf_counter() - start
        with ctx.lock:
            slowest = max(
                (p.elapsed_s for p in ctx.shard_actuals.get(id(self), ())),
                default=0.0,
            )
        self._store_result_memo(ctx, result)
        # critical path, as in the scatter scans: shards overlapped
        self._record(ctx, result, slowest + merge_elapsed)
        return result

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        prelude = self._prelude(ctx, inputs)
        if prelude is None:
            return super()._run(ctx, inputs)
        parts = [
            self._merge_shard(ctx, shard, prelude)
            for shard in range(self.num_shards)
        ]
        return self._combine(inputs, prelude, parts)


@dataclass(frozen=True)
class OperatorProfile:
    """One EXPLAIN row: an operator with estimated vs. actual cardinality."""

    op: str
    depth: int
    estimated: Card
    actual: Card | None
    elapsed_s: float
    access_path: str | None = None
    #: pool thread that ran the operator (pooled executions only)
    worker: str | None = None
    #: shard index, on the per-shard sub-rows of a scattered operator
    shard: int | None = None

    def line(self) -> str:
        actual = (
            f"act {self.actual.nodes:.0f}n/{self.actual.links:.0f}l"
            if self.actual is not None
            else "act -"
        )
        worker = f"  @{self.worker}" if self.worker else ""
        return (
            f"{'  ' * self.depth}{self.op}  "
            f"[est {self.estimated!r}  {actual}  "
            f"{self.elapsed_s * 1e3:.2f}ms{worker}]"
        )


@dataclass
class PlanExecution:
    """One execution of a physical plan: result graph + operator profiles.

    Operator profiles are *lazy*: rendering EXPLAIN rows re-estimates
    every operator against the statistics, which serving paths that never
    look at the plan should not pay for.  The raw execution context is
    kept instead and the rows materialise on first access.
    """

    plan: "PhysicalPlan"
    result: SocialContentGraph
    ctx: ExecContext
    cache_hit: bool = False
    #: operators that abandoned their planned access path at runtime
    degraded_ops: int = 0
    #: how the plan ran: "sequential" or "pooled(<max_workers>)"
    executor: str = "sequential"
    #: result bound pushed into the ranking stage (None = full ranking)
    topk: int | None = None
    _profiles_cache: tuple[OperatorProfile, ...] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def profiles(self) -> tuple[OperatorProfile, ...]:
        """Per-operator EXPLAIN rows (materialised on first access)."""
        if self._profiles_cache is None:
            self._profiles_cache = tuple(self.plan._profiles(self.ctx))
        return self._profiles_cache

    @property
    def op_actuals(self) -> dict:
        """Physical op → (actual cardinality, elapsed seconds).

        The raw profile map cardinality feedback consumes — op identity,
        not render strings.
        """
        actuals = self.ctx.actuals
        return {
            op: actuals[id(op)]
            for op in PhysicalPlan._walk(self.plan.root, set())
            if id(op) in actuals
        }

    @property
    def payload(self) -> Any:
        """The root operator's decoded side output, if it produced one.

        Fused operators compute plain-value results (score maps, decoded
        rankings) *before* encoding them into the result graph; consumers
        that want the values — not the graph — read them here and skip
        the decode round-trip.
        """
        return self.ctx.payloads.get(id(self.plan.root))

    @property
    def used_network_index(self) -> bool:
        """True when a §6.2 endorsement index actually served this run.

        Plan-level ``uses_network_index`` says what was *lowered*; an
        operator may still degrade at execution time (missing provider,
        data regime the index cannot serve exactly) — then this is False.
        """
        return self.plan.uses_network_index and self.degraded_ops == 0

    def scores(self) -> dict:
        """The result as a score map (Def 1 null-graph reading).

        Unscored nodes map to 0.0 — exactly how the discovery pipeline
        reads a scoped-but-unscored candidate set.
        """
        return {node.id: (node.score or 0.0) for node in self.result.nodes()}

    @property
    def used_index(self) -> bool:
        return self.plan.uses_index

    @property
    def resilience(self) -> tuple[str, ...]:
        """Degradation-ladder transitions this execution took, in order."""
        return tuple(self.ctx.resilience_events)

    def render(self) -> str:
        """EXPLAIN ANALYZE-style tree: every operator, est vs. actual."""
        topk = f"  top-k={self.topk}" if self.topk is not None else ""
        header = [
            f"access={self.plan.access_path}  "
            f"cache={'hit' if self.cache_hit else 'miss'}  "
            f"executor={self.executor}{topk}"
        ]
        if self.plan.rewrites.applied:
            header.append(f"rewrites: {', '.join(self.plan.rewrites.applied)}")
        if self.ctx.resilience_events:
            header.append(
                "resilience: " + ", ".join(self.ctx.resilience_events)
            )
        return "\n".join(header + [p.line() for p in self.profiles])


class PhysicalPlan:
    """A compiled, executable plan with cardinality bookkeeping.

    Produced by :func:`repro.plan.compiler.compile_plan`; immutable once
    built, so one compiled plan can serve any number of executions (the
    plan cache relies on this).
    """

    def __init__(
        self,
        root: PhysicalOp,
        logical: Expr,
        source: Expr,
        rewrites: OptimizeReport,
        stats: GraphStats,
        key: Any,
        decisions: tuple = (),
        # StrategyDecision lives in the compiler, which imports this
        # module; typing it here would close an import cycle
        strategy_decision: Any = None,
        resolved_strategy: str | None = None,
    ):
        self.root = root
        self.logical = logical
        self.source = source
        self.rewrites = rewrites
        self.stats = stats
        self.key = key
        #: access-path decisions the compiler made (one per choice costed)
        self.decisions = decisions
        #: the cost-based strategy pick when the query left it open
        self.strategy_decision = strategy_decision
        #: concrete social strategy the lowered plan runs (None when the
        #: plan has no social stage)
        self.resolved_strategy = resolved_strategy
        #: set by the planner once this plan's first execution has fed
        #: its actual cardinalities back to the cost model
        self.feedback_observed = False
        self._estimated_cost: float | None = None

    @property
    def uses_index(self) -> bool:
        """True when any operator reads the semantic inverted index."""
        return any(
            op.access_path == INDEX for op in self._walk(self.root, set())
        )

    @property
    def uses_network_index(self) -> bool:
        """True when the social stage reads a §6.2 endorsement index."""
        return any(
            op.access_path in (NETWORK_EXACT, NETWORK_CLUSTERED)
            for op in self._walk(self.root, set())
        )

    @property
    def uses_sharded_scan(self) -> bool:
        """True when any scan scatters across store partitions."""
        return any(
            op.access_path == SHARDED for op in self._walk(self.root, set())
        )

    @property
    def process_shippable(self) -> bool:
        """True when the scatter work of this plan can leave the process.

        At least one scattered scan ships its program whole, and no
        scattered scan is pinned in-process by an unpicklable residual —
        covered scans (which never ship, by choice) don't disqualify.  A
        half-shippable plan stays on threads: paying slab shipping to
        parallelise only part of the scatter loses on both sides.
        """
        ships = 0
        for op in self._walk(self.root, set()):
            if not isinstance(op, _ScatterScanOp):
                continue
            if op.ship_program() is not None:
                ships += 1
            elif not getattr(op, "covered", False):
                return False
        return ships > 0

    @property
    def access_path(self) -> str:
        """Dominant access path tag for response metadata."""
        return INDEX if self.uses_index else SCAN

    @property
    def estimated_cost(self) -> float:
        """Scalar work proxy: summed estimated cardinality over all ops.

        The pooled executor's go/no-go signal — pool handoff costs real
        microseconds, so plans below the cost model's threshold stay on
        the sequential path.
        """
        if self._estimated_cost is None:
            self._estimated_cost = sum(
                op.estimate(self.stats).cost()
                for op in self._walk(self.root, set())
            )
        return self._estimated_cost

    @staticmethod
    def _walk(op: PhysicalOp, seen: set) -> Iterator[PhysicalOp]:
        if id(op) in seen:
            return
        seen.add(id(op))
        yield op
        for child in op.children:
            yield from PhysicalPlan._walk(child, seen)

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        env: Mapping[str, SocialContentGraph],
        index_provider: Callable[[], Any] | None = None,
        network_provider: Callable[[str], Any] | None = None,
        shard_provider: Callable[
            [SocialContentGraph], "Sequence[ShardView] | None"
        ] | None = None,
        pool: Any = None,
        parallel: str = "auto",
        parallel_min_cost: float = 0.0,
        result_cache: dict | None = None,
        attr_provider: Callable[
            [SocialContentGraph, str, Any], "list | None"
        ] | None = None,
        topk: int | None = None,
        process_backend: Any | None = None,
        deadline: float | None = None,
        resilience_notes: Sequence[str] = (),
    ) -> PlanExecution:
        """Run the plan; the result never aliases an input/literal graph.

        *parallel* picks the executor: ``"never"`` stays sequential,
        ``"force"`` drives the DAG through *pool* unconditionally,
        ``"threads"`` is cost-gated pooling with the process backend
        pinned off, ``"processes"`` forces pooling (the thread pool
        overlaps the per-shard pipe round-trips) with the backend
        attached, and ``"auto"`` (the default) uses the pool only when
        one was supplied and :attr:`estimated_cost` clears
        *parallel_min_cost* — pool handoff on a trivial plan costs more
        than it saves.  Every mode produces identical graphs and
        profiles; pooled runs additionally tag each operator with the
        worker thread that ran it.

        *process_backend* (a :class:`repro.plan.parallel.ProcessBackend`
        bound to the planner's current shard views, or ``None``) routes
        shippable scatter scans to resident worker processes; any worker
        failure degrades the rest of the execution to the in-process
        path, annotated in the executor string.

        *topk* is an execution parameter, not part of the plan shape (so
        cached plans serve any k): ranking operators bound their sorted
        output to the top *k* rows instead of ordering the full
        candidate set.  Scores, provenance and the result graph are
        unaffected — only the decoded ranking list is cut.

        *deadline* is an absolute monotonic timestamp (``None`` = none):
        cooperative checks between operators and between per-shard
        subtasks raise :class:`~repro.errors.DeadlineError` once it has
        passed, unwinding the execution promptly instead of finishing
        doomed work.  *resilience_notes* seeds the execution's
        resilience-event trail (the planner passes the ladder steps that
        led to this attempt, e.g. a pooled run that was retried
        sequentially).
        """
        ctx = ExecContext(env, index_provider, network_provider,
                          shard_provider, attr_provider)
        ctx.result_cache = result_cache
        ctx.topk = topk
        ctx.process_backend = process_backend
        if deadline is not None:
            ctx.deadline = deadline
            ctx.deadline_anchor = time.monotonic()
        ctx.resilience_events.extend(resilience_notes)
        use_pool = pool is not None and parallel != "never" and (
            parallel in ("force", "processes")
            or self.estimated_cost >= parallel_min_cost
        )
        if use_pool:
            from repro.plan.parallel import execute_pooled

            ctx.pooled = True
            result = execute_pooled(self.root, ctx, pool)
            executor = f"pooled({pool.max_workers})"
        else:
            result = self.root.execute(ctx)
            executor = "sequential"
        if process_backend is not None:
            executor = f"processes({process_backend.workers})+{executor}"
            if ctx.process_degraded:
                executor += " (degraded→threads)"
                ctx.resilience_events.append("pool:processes→threads")
        if id(result) in ctx.borrowed:
            result = result.copy()
        return PlanExecution(
            plan=self, result=result, ctx=ctx,
            degraded_ops=len(ctx.degraded),
            executor=executor,
            topk=topk,
        )

    def _profiles(self, ctx: ExecContext, op: PhysicalOp | None = None,
                  depth: int = 0) -> Iterator[OperatorProfile]:
        op = op if op is not None else self.root
        actual, elapsed = ctx.actuals.get(id(op), (None, 0.0))
        description = op.describe()
        if id(op) in ctx.degraded:
            description += " (degraded→probe)"
        if id(op) in ctx.subplan_hits:
            description += " (memo)"
        estimated = op.estimate(self.stats)
        yield OperatorProfile(
            op=description,
            depth=depth,
            estimated=estimated,
            actual=actual,
            elapsed_s=elapsed,
            access_path=op.access_path,
            worker=ctx.workers.get(id(op)),
        )
        shard_rows = ctx.shard_actuals.get(id(op))
        if shard_rows:
            per_shard_estimate = Card(
                estimated.nodes / len(shard_rows),
                estimated.links / len(shard_rows),
            )
            for row in sorted(shard_rows, key=lambda r: r.shard):
                label = f"shard[{row.shard}]"
                if row.scan_s is not None:
                    # process-served: show the ship/scan split (the
                    # remainder of elapsed_s is the coordinator gather)
                    label += (
                        f" ship={row.ship_s * 1e3:.2f}ms"
                        f" scan={row.scan_s * 1e3:.2f}ms"
                    )
                yield OperatorProfile(
                    op=label,
                    depth=depth + 1,
                    estimated=per_shard_estimate,
                    actual=row.actual,
                    elapsed_s=row.elapsed_s,
                    access_path=None,
                    worker=row.worker,
                    shard=row.shard,
                )
        for child in op.children:
            yield from self._profiles(ctx, child, depth + 1)

    # -- rendering --------------------------------------------------------------

    def render(self) -> str:
        """Pre-execution plan tree with estimates only."""
        lines = []

        def walk(op: PhysicalOp, depth: int) -> None:
            lines.append(
                f"{'  ' * depth}{op.describe()}  [est {op.estimate(self.stats)!r}]"
            )
            for child in op.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        ops = sum(1 for _ in self._walk(self.root, set()))
        return (
            f"PhysicalPlan(ops={ops}, access={self.access_path}, "
            f"rewrites={len(self.rewrites.applied)})"
        )

"""The asyncio serving gateway: admission → dynamic batching → execution.

:class:`ServeGateway` is the concurrent front door of one warm
:class:`~repro.api.Session`.  Many logical tenants submit
:class:`~repro.api.SearchRequest`\\ s concurrently; the gateway

1. runs **admission control** (:mod:`repro.serve.admission`): per-tenant
   spend budgets plus a global in-flight depth cap, shedding with a typed
   :class:`~repro.serve.admission.Overloaded` outcome instead of queueing
   unboundedly;
2. performs **dynamic batching**: admitted requests sharing a plan key
   (:func:`repro.serve.batching.batch_key`) within a short batching
   window coalesce into a single ``Session.run_many`` call — the shared
   plan cache compiles once and every other batch member is a cache hit
   over already-primed warm state;
3. executes batches on a bounded thread pool with **per-request error
   isolation** (``run_many(isolate_errors=True)``): one tenant's stale
   cursor returns that tenant a
   :class:`~repro.api.RequestFailure`, never aborting batch-mates.

Ready batches drain through a priority heap — (tenant priority class,
arrival order) — so interactive traffic goes first when the pool is
contended, and a batch keeps accumulating joiners while it waits for a
pool slot.

**Deadlines.**  Each admitted request carries an end-to-end deadline
(the tenant's :attr:`~repro.serve.admission.TenantPolicy.deadline_s`,
falling back to :attr:`GatewayConfig.default_deadline_s`; ``None``
disables).  The deadline is enforced twice: a loop-side timer resolves
the future with a typed
:class:`~repro.serve.admission.DeadlineExceeded` the moment the clock
runs out (``stage="queued"`` or ``"executing"`` — a submission can
*never* wedge, whatever the executor threads are doing), and the same
absolute monotonic deadline rides into
``Session.run_many(deadlines=...)`` where the plan executor's
cooperative :meth:`~repro.plan.physical.ExecContext.check_deadline`
stops shard scans between operators so a doomed request stops burning
pool time.  Requests already expired at dispatch are dropped from the
batch before execution.

**Hedging.**  The gateway tracks batch-execution latencies
(:class:`~repro.serve.resilience.HedgeTracker`); a dispatched batch
that exceeds the tracked quantile is re-dispatched on a dedicated hedge
thread and the first completion wins — batch execution is deterministic
and read-only, so the duplicate is wasted heat, not a correctness
hazard, and one wedged executor thread no longer wedges its batch.

Concurrency model: ``submit`` must be called from the event loop the
gateway was started on (the load harness and the quickstart both drive it
with ``asyncio``; threads integrate via
``asyncio.run_coroutine_threadsafe``).  All loop-side state (pending
batches, the ready heap, entry bookkeeping, counters) is therefore
single-threaded by construction; the pieces shared with worker threads —
the admission controller and the session itself — carry their own locks.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.api import RequestFailure, SearchRequest, SearchResponse, Session
from repro.core.faults import fault_point
from repro.core.resilience import BreakerStats
from repro.errors import DeadlineError, QueryError, ServeError
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionStats,
    Admitted,
    DeadlineExceeded,
    Overloaded,
)
from repro.serve.batching import batch_key, describe_key
from repro.serve.metrics import histogram_mean
from repro.serve.resilience import HedgeTracker, breaker_snapshot

#: What one submission resolves to.
ServeOutcome = (
    SearchResponse | RequestFailure | Overloaded | DeadlineExceeded
)

_BatchResult = list[SearchResponse | RequestFailure]


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway tunables: batching shape, execution width, admission."""

    #: how long the first request of a plan key waits for batch-mates
    batch_window_s: float = 0.004
    #: flush a batch early once it reaches this size
    max_batch: int = 16
    #: worker threads — concurrent ``run_many`` batches in flight
    max_concurrent_batches: int = 4
    #: plan-executor mode pinned onto the session's planner at gateway
    #: construction ("auto"/"never"/"force"/"threads"/"processes"); None
    #: leaves the session's configured mode untouched
    parallelism: str | None = None
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: end-to-end deadline applied to tenants whose policy does not set
    #: one; ``None`` (the default) keeps the pre-resilience behavior
    default_deadline_s: float | None = None
    #: how long ``stop()`` waits for in-flight work before failing the
    #: stragglers with a typed ``DeadlineExceeded(stage="shutdown")``;
    #: also bounds the ``checkpoint()`` quiesce
    drain_timeout_s: float = 5.0
    #: hedge batches whose execution exceeds the tracked latency
    #: quantile (False disables the hedge thread entirely)
    hedge: bool = True
    #: latency quantile (0..1) that arms a hedge
    hedge_quantile: float = 0.95
    #: hedge fires at quantile × multiplier
    hedge_multiplier: float = 2.0
    #: executions observed before hedging activates
    hedge_min_samples: int = 16


@dataclass(frozen=True)
class KeyStats:
    """Per-plan-key batching accounting (hot-key reporting)."""

    label: str
    requests: int
    batches: int

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


@dataclass(frozen=True)
class GatewayStats:
    """One snapshot of the gateway's serving counters."""

    submitted: int
    completed: int
    failed: int
    shed: int
    batches: int
    #: batch size -> number of batches executed at that size
    batch_size_histogram: Mapping[int, int]
    #: per plan key: requests and batches (hot-key mean batch sizes)
    keys: Mapping[str, KeyStats]
    admission: AdmissionStats
    #: requests resolved with a typed ``DeadlineExceeded`` (any stage)
    deadline_expired: int = 0
    #: batches re-dispatched because their slot exceeded the hedge cut
    hedged_batches: int = 0
    #: every breaker the serving session carries, by name
    breakers: Mapping[str, BreakerStats] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return histogram_mean(self.batch_size_histogram)

    def hot_keys(self, n: int = 5) -> list[KeyStats]:
        """The *n* most-requested plan keys, busiest first."""
        ranked = sorted(
            self.keys.values(), key=lambda ks: (-ks.requests, ks.label)
        )
        return ranked[:n]


class _Entry:
    """One admitted submission's loop-side bookkeeping.

    Holds the future, the admission ticket, and the deadline machinery.
    Resolution (:meth:`ServeGateway._resolve`) is idempotent: whichever
    of the deadline timer, the executing batch, or the shutdown drain
    gets there first sets the result, cancels the timer, and releases
    the ticket — the losers find ``future.done()`` / ``released`` and
    do nothing.
    """

    __slots__ = (
        "request",
        "future",
        "ticket",
        "deadline",
        "deadline_s",
        "submitted",
        "timer",
        "released",
        "dispatched",
    )

    def __init__(
        self,
        request: SearchRequest,
        future: "asyncio.Future[ServeOutcome]",
        ticket: Admitted,
        deadline_s: float | None,
    ) -> None:
        self.request = request
        self.future = future
        self.ticket = ticket
        self.deadline_s = deadline_s
        self.submitted = time.monotonic()
        #: absolute monotonic expiry (rides into the plan executor)
        self.deadline: float | None = (
            self.submitted + deadline_s if deadline_s is not None else None
        )
        self.timer: asyncio.TimerHandle | None = None
        self.released = False
        self.dispatched = False


class _PendingBatch:
    """Requests accumulating under one plan key until flush."""

    __slots__ = ("key", "seq", "priority", "entries", "timer", "ready")

    def __init__(self, key: SearchRequest, seq: int, priority: int):
        self.key = key
        self.seq = seq
        self.priority = priority
        self.entries: list[_Entry] = []
        self.timer: asyncio.TimerHandle | None = None
        self.ready = False

    def __lt__(self, other: "_PendingBatch") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class ServeGateway:
    """The async serving front of one warm session (see module doc)."""

    def __init__(self, session: Session, config: GatewayConfig | None = None):
        self.session = session
        self.config = config if config is not None else GatewayConfig()
        if self.config.max_batch < 1:
            raise ServeError(
                f"max_batch must be >= 1, got {self.config.max_batch!r}"
            )
        if self.config.max_concurrent_batches < 1:
            raise ServeError(
                "max_concurrent_batches must be >= 1, got "
                f"{self.config.max_concurrent_batches!r}"
            )
        if self.config.drain_timeout_s <= 0.0:
            raise ServeError(
                "drain_timeout_s must be positive, got "
                f"{self.config.drain_timeout_s!r}"
            )
        if self.config.parallelism is not None:
            try:
                session.set_parallelism(self.config.parallelism)
            except QueryError as error:
                raise ServeError(str(error)) from error
        self.admission = AdmissionController(self.config.admission)
        self._hedge = HedgeTracker(
            quantile=self.config.hedge_quantile,
            multiplier=self.config.hedge_multiplier,
            min_samples=self.config.hedge_min_samples,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._hedge_executor: ThreadPoolExecutor | None = None
        self._dispatcher: asyncio.Task[None] | None = None
        self._pending: dict[SearchRequest, _PendingBatch] = {}
        self._ready: list[_PendingBatch] = []
        self._ready_event: asyncio.Event | None = None
        self._slots: asyncio.Semaphore | None = None
        self._entries: set[_Entry] = set()
        self._open = 0
        self._drained: asyncio.Event | None = None
        self._seq = 0
        self._running = False
        # counters (event-loop thread only)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._deadline_expired = 0
        self._hedged_batches = 0
        self._batches = 0
        self._batch_sizes: dict[int, int] = {}
        self._key_requests: dict[str, int] = {}
        self._key_batches: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind to the running loop and start the dispatcher."""
        if self._running:
            raise ServeError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent_batches,
            thread_name_prefix="serve-batch",
        )
        if self.config.hedge:
            # one spare thread, deliberately outside the slot-bounded
            # pool: a hedge exists to route around a wedged pool thread,
            # so it must not queue behind the very threads it rescues
            self._hedge_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-hedge"
            )
        self._ready_event = asyncio.Event()
        self._slots = asyncio.Semaphore(self.config.max_concurrent_batches)
        self._drained = asyncio.Event()
        self._drained.set()
        self._running = True
        self._dispatcher = self._loop.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop accepting, drain in-flight work *boundedly*, release the pool.

        The drain waits at most :attr:`GatewayConfig.drain_timeout_s`.
        Requests still unresolved past that bound (a wedged executor
        thread, a hung fault) are failed with a typed
        ``DeadlineExceeded(stage="shutdown")`` — shutdown never hangs
        and never strands a future — and the pool is torn down without
        joining the wedged thread.
        """
        if not self._running:
            return
        self._running = False
        # flush every accumulating batch now — nothing new can join
        for batch in list(self._pending.values()):
            self._flush(batch)
        drain_clean = True
        if self._drained is not None:
            try:
                await asyncio.wait_for(
                    self._drained.wait(), self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                drain_clean = False
                now = time.monotonic()
                for entry in list(self._entries):
                    self._resolve(
                        entry,
                        DeadlineExceeded(
                            tenant=entry.ticket.tenant,
                            stage="shutdown",
                            elapsed_s=now - entry.submitted,
                            deadline_s=(
                                entry.deadline_s
                                if entry.deadline_s is not None
                                else self.config.drain_timeout_s
                            ),
                        ),
                    )
                # resolved futures still need a loop tick for their
                # awaiting submit() coroutines to run finally blocks
                try:
                    await asyncio.wait_for(self._drained.wait(), 1.0)
                except asyncio.TimeoutError:
                    pass
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._executor is not None:
            # a dirty drain means a pool thread may never return — don't
            # join it, orphan it (daemon threads die with the process)
            self._executor.shutdown(
                wait=drain_clean, cancel_futures=not drain_clean
            )
            self._executor = None
        if self._hedge_executor is not None:
            self._hedge_executor.shutdown(
                wait=drain_clean, cancel_futures=not drain_clean
            )
            self._hedge_executor = None

    async def __aenter__(self) -> "ServeGateway":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- serving --------------------------------------------------------------

    async def submit(
        self, tenant: str, request: SearchRequest
    ) -> ServeOutcome:
        """One tenant's request: admitted+batched+executed, or shed.

        Returns a :class:`SearchResponse` on success, a
        :class:`RequestFailure` when this request's own evaluation raised,
        a typed :class:`Overloaded` when admission shed it, or a typed
        :class:`DeadlineExceeded` when its end-to-end deadline expired.
        Never raises for per-request conditions — callers fan out
        thousands of these concurrently and pattern-match the outcome.
        """
        if not self._running or self._loop is None:
            raise ServeError("gateway is not running (use `async with`)")
        self._submitted += 1
        verdict = self.admission.admit(tenant)
        if isinstance(verdict, Overloaded):
            self._shed += 1
            return verdict
        policy = self.config.admission.for_tenant(tenant)
        deadline_s = (
            policy.deadline_s
            if policy.deadline_s is not None
            else self.config.default_deadline_s
        )
        future: "asyncio.Future[ServeOutcome]" = self._loop.create_future()
        entry = _Entry(request, future, verdict, deadline_s)
        if deadline_s is not None:
            entry.timer = self._loop.call_later(
                deadline_s, self._expire, entry
            )
        self._entries.add(entry)
        self._track_open(+1)
        key = batch_key(request)
        batch = self._pending.get(key)
        if batch is None:
            self._seq += 1
            batch = _PendingBatch(key, self._seq, verdict.priority)
            self._pending[key] = batch
            batch.timer = self._loop.call_later(
                self.config.batch_window_s, self._flush, batch
            )
        batch.entries.append(entry)
        if not batch.ready:
            # heap ordering key — frozen once the batch is in the heap
            batch.priority = min(batch.priority, verdict.priority)
        if len(batch.entries) >= self.config.max_batch:
            self._flush(batch)
            self._retire(batch)
        try:
            return await future
        finally:
            self._track_open(-1)

    # -- durability -----------------------------------------------------------

    async def checkpoint(self, directory: str | Path) -> dict[str, Any]:
        """Drain, then snapshot the serving site into *directory*.

        Quiesce protocol: every accumulating batch is flushed, then all
        pool slots are acquired — no batch is executing and none can
        start — and the session checkpoints
        (:meth:`~repro.api.Session.save`) on the loop's *default*
        executor (our own pool is deliberately full).  Slots release in
        dispatch order afterwards, so serving resumes exactly where it
        paused; submissions arriving mid-checkpoint simply queue behind
        the held slots.  The quiesce is bounded by
        :attr:`GatewayConfig.drain_timeout_s`: a wedged batch raises a
        :class:`~repro.errors.ServeError` instead of hanging the
        checkpoint forever.  Returns the snapshot manifest.
        """
        if not self._running or self._loop is None or self._slots is None:
            raise ServeError("gateway is not running (use `async with`)")
        for batch in list(self._pending.values()):
            self._flush(batch)
        width = self.config.max_concurrent_batches
        acquired = 0
        try:
            for _ in range(width):
                try:
                    await asyncio.wait_for(
                        self._slots.acquire(), self.config.drain_timeout_s
                    )
                except asyncio.TimeoutError:
                    raise ServeError(
                        "checkpoint quiesce timed out after "
                        f"{self.config.drain_timeout_s}s "
                        f"({acquired}/{width} slots; a batch is wedged)"
                    ) from None
                acquired += 1
            return await self._loop.run_in_executor(
                None, lambda: self.session.save(directory)
            )
        finally:
            for _ in range(acquired):
                self._slots.release()

    # -- batching internals ---------------------------------------------------

    def _track_open(self, delta: int) -> None:
        self._open += delta
        if self._drained is None:
            return
        if self._open <= 0:
            self._drained.set()
        else:
            self._drained.clear()

    def _resolve(self, entry: _Entry, outcome: ServeOutcome) -> None:
        """Resolve one entry exactly once (timer/batch/shutdown race-safe).

        Cancels the deadline timer, releases the admission ticket, and
        sets the future — each at most once, in that order, so whichever
        path loses the race is a no-op.  All counters are incremented
        here and only here.
        """
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        if not entry.released:
            entry.released = True
            self.admission.release(entry.ticket)
        self._entries.discard(entry)
        if entry.future.done():
            return
        entry.future.set_result(outcome)
        if isinstance(outcome, DeadlineExceeded):
            self._deadline_expired += 1
        elif isinstance(outcome, RequestFailure):
            self._failed += 1
        elif isinstance(outcome, Overloaded):  # pragma: no cover - defensive
            self._shed += 1
        else:
            self._completed += 1

    def _expire(self, entry: _Entry) -> None:
        """Deadline timer fired (loop thread): fail the future, typed.

        The entry may simultaneously be executing on a pool thread; the
        executor's eventual result is discarded by :meth:`_resolve`'s
        ``future.done()`` guard.  Expiry releases the admission ticket —
        the caller is no longer waiting, so the depth slot is free even
        though a doomed computation may still be burning a pool thread
        (the plan-side cooperative check will stop it shortly).
        """
        if entry.future.done():
            return
        assert entry.deadline_s is not None
        self._resolve(
            entry,
            DeadlineExceeded(
                tenant=entry.ticket.tenant,
                stage="executing" if entry.dispatched else "queued",
                elapsed_s=time.monotonic() - entry.submitted,
                deadline_s=entry.deadline_s,
            ),
        )

    def _flush(self, batch: _PendingBatch) -> None:
        """Hand *batch* to the dispatcher (idempotent).

        The batch stays *joinable* — it remains in the pending map, so
        same-key arrivals keep coalescing into it while it waits for a
        pool slot (that wait dominates the batching window under load).
        It stops accepting joiners only when full (:meth:`_retire` at
        ``max_batch``) or actually dispatched.
        """
        if batch.ready:
            return
        batch.ready = True
        if batch.timer is not None:
            batch.timer.cancel()
        heapq.heappush(self._ready, batch)
        if self._ready_event is not None:
            self._ready_event.set()

    def _retire(self, batch: _PendingBatch) -> None:
        """Stop *batch* from accepting joiners (full or dispatching)."""
        if self._pending.get(batch.key) is batch:
            del self._pending[batch.key]

    async def _dispatch_loop(self) -> None:
        """Drain ready batches into pool slots, best priority first."""
        assert self._ready_event is not None and self._slots is not None
        while True:
            await self._ready_event.wait()
            if not self._ready:
                self._ready_event.clear()
                continue
            # take a slot first: while we wait, joiners keep accumulating
            # in *pending* batches and higher-priority batches may become
            # ready — the pop below happens at dispatch time.
            await self._slots.acquire()
            if not self._ready:
                self._slots.release()
                self._ready_event.clear()
                continue
            batch = heapq.heappop(self._ready)
            # close the joining window *now*, on the loop thread, before
            # the executing task snapshots the entry list
            self._retire(batch)
            if not self._ready:
                self._ready_event.clear()
            assert self._loop is not None
            self._loop.create_task(self._run_batch(batch))

    async def _run_batch(self, batch: _PendingBatch) -> None:
        """Execute one sealed batch on the pool; resolve its futures."""
        assert self._loop is not None and self._slots is not None
        # requests whose deadline already fired while queued are dropped
        # here — no point spending a pool slot on an answer nobody waits
        # for (their futures were resolved by the timer)
        live = [e for e in batch.entries if not e.future.done()]
        if not live:
            self._slots.release()
            return
        for entry in live:
            entry.dispatched = True
        requests = [entry.request for entry in live]
        deadlines = [entry.deadline for entry in live]
        label = describe_key(batch.key)
        session = self.session

        def work() -> _BatchResult:
            fault_point("serve.batch", key=label, size=len(requests))
            return session.run_many(
                requests, isolate_errors=True, deadlines=deadlines
            )

        started = time.monotonic()
        try:
            outcomes = await self._execute_hedged(work)
        except Exception as exc:
            # batch-level failure (e.g. refresh blew up): every member
            # gets a failure outcome — the gateway itself stays up.
            outcomes = [
                RequestFailure(
                    request=request,
                    kind=type(exc).__name__,
                    message=str(exc),
                    error=exc,
                )
                for request in requests
            ]
        finally:
            self._slots.release()
        self._hedge.observe(time.monotonic() - started)
        self._record_batch(live, batch)
        now = time.monotonic()
        for entry, outcome in zip(live, outcomes):
            self._resolve(entry, self._map_outcome(entry, outcome, now))

    def _map_outcome(
        self,
        entry: _Entry,
        outcome: SearchResponse | RequestFailure,
        now: float,
    ) -> ServeOutcome:
        """Plan-side deadline expiry surfaces as the same typed outcome.

        The executor reports a cooperative deadline stop as a
        ``RequestFailure`` wrapping a :class:`~repro.errors.DeadlineError`
        (that is ``run_many``'s uniform isolation envelope); the gateway
        unwraps it so callers see one ``DeadlineExceeded`` type whether
        the clock ran out on the loop or between two shard scans.
        """
        if isinstance(outcome, RequestFailure) and isinstance(
            outcome.error, DeadlineError
        ):
            return DeadlineExceeded(
                tenant=entry.ticket.tenant,
                stage=outcome.error.stage,
                elapsed_s=now - entry.submitted,
                deadline_s=(
                    entry.deadline_s if entry.deadline_s is not None else 0.0
                ),
            )
        return outcome

    async def _execute_hedged(
        self, work: Callable[[], _BatchResult]
    ) -> _BatchResult:
        """Run *work* on the pool; hedge it if it outlives the quantile.

        The hedge re-runs the same closure on the dedicated hedge thread
        and the first completion wins.  Batch execution is deterministic
        and side-effect-free over warm state, so the loser's result (or
        exception) is simply discarded.
        """
        assert self._loop is not None
        primary = self._loop.run_in_executor(self._executor, work)
        delay = (
            self._hedge.hedge_delay()
            if self._hedge_executor is not None
            else None
        )
        if delay is None:
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=delay)
        if done:
            return primary.result()
        self._hedged_batches += 1
        secondary = self._loop.run_in_executor(self._hedge_executor, work)
        done, pending = await asyncio.wait(
            {primary, secondary}, return_when=asyncio.FIRST_COMPLETED
        )
        for loser in pending:
            # keep the loser from logging "exception never retrieved"
            loser.add_done_callback(lambda f: f.exception())
        for winner in done:
            if winner.exception() is None:
                return winner.result()
        if pending:
            # every finished attempt raised; the straggler may still win
            return await next(iter(pending))
        return done.pop().result()  # re-raises the (only) exception

    def _record_batch(
        self, live: list[_Entry], batch: _PendingBatch
    ) -> None:
        size = len(live)
        self._batches += 1
        self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
        label = describe_key(batch.key)
        self._key_requests[label] = self._key_requests.get(label, 0) + size
        self._key_batches[label] = self._key_batches.get(label, 0) + 1

    # -- introspection --------------------------------------------------------

    def stats(self) -> GatewayStats:
        """A snapshot of the serving counters (loop thread)."""
        keys = {
            label: KeyStats(
                label=label,
                requests=requests,
                batches=self._key_batches.get(label, 0),
            )
            for label, requests in self._key_requests.items()
        }
        return GatewayStats(
            submitted=self._submitted,
            completed=self._completed,
            failed=self._failed,
            shed=self._shed,
            batches=self._batches,
            batch_size_histogram=dict(self._batch_sizes),
            keys=keys,
            admission=self.admission.stats(),
            deadline_expired=self._deadline_expired,
            hedged_batches=self._hedged_batches,
            breakers=breaker_snapshot(self.session),
        )

    def plan_cache_stats(self) -> dict[str, object]:
        """The site-wide shared plan-cache counters (management endpoint)."""
        return self.session.data_manager.plan_cache_stats()


__all__ = [
    "GatewayConfig",
    "GatewayStats",
    "KeyStats",
    "ServeGateway",
    "ServeOutcome",
]

"""Tests for the synthetic workload generators."""

from __future__ import annotations

import pytest

from repro.workloads import (
    ALEXIA,
    JOHN,
    SELMA,
    TaggingSiteConfig,
    TravelSiteConfig,
    WorkloadConfig,
    build_site,
    build_tagging_site,
    build_travel_site,
)


class TestGenericGenerator:
    def test_deterministic(self):
        a = build_site(WorkloadConfig(num_users=40, num_items=60, seed=5))
        b = build_site(WorkloadConfig(num_users=40, num_items=60, seed=5))
        assert a.graph.same_as(b.graph)

    def test_seed_changes_output(self):
        a = build_site(WorkloadConfig(num_users=40, num_items=60, seed=5))
        b = build_site(WorkloadConfig(num_users=40, num_items=60, seed=6))
        assert not a.graph.same_as(b.graph)

    def test_counts(self):
        site = build_site(WorkloadConfig(num_users=50, num_items=80, seed=1))
        assert len(site.user_ids) == 50
        assert len(site.item_ids) == 80
        users = list(site.graph.nodes_of_type("user"))
        items = list(site.graph.nodes_of_type("item"))
        assert len(users) == 50 and len(items) == 80

    def test_friendships_are_symmetric(self):
        site = build_site(WorkloadConfig(num_users=30, num_items=30, seed=2))
        g = site.graph
        for link in g.links_of_type("friend"):
            assert g.has_link(f"fr:{link.tgt}->{link.src}")

    def test_activities_reference_real_items(self):
        site = build_site(WorkloadConfig(num_users=30, num_items=30, seed=2))
        for link in site.graph.links_of_type("act"):
            assert site.graph.node(link.tgt).has_type("item")

    def test_barabasi_albert_model(self):
        site = build_site(
            WorkloadConfig(num_users=30, num_items=20,
                           network_model="barabasi_albert", seed=3)
        )
        assert any(site.graph.links_of_type("friend"))

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_site(WorkloadConfig(network_model="smallworldz"))

    def test_zipf_popularity_skew(self):
        site = build_site(WorkloadConfig(num_users=150, num_items=100, seed=4))
        counts: dict[str, int] = {}
        for link in site.graph.links_of_type("act"):
            counts[link.tgt] = counts.get(link.tgt, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        # Top decile of items should absorb well above uniform share.
        top = sum(ordered[: max(1, len(ordered) // 10)])
        assert top / sum(ordered) > 0.2


class TestTravelSite:
    def test_personas_present(self):
        site = build_travel_site(TravelSiteConfig(seed=9))
        for persona in (JOHN, SELMA, ALEXIA):
            assert site.graph.has_node(persona)

    def test_john_is_a_baseball_fan(self):
        site = build_travel_site(TravelSiteConfig(seed=9))
        g = site.graph
        visited = {l.tgt for l in g.out_links(JOHN) if l.has_type("visit")}
        assert visited, "John must have past visits"
        assert all(g.node(v).value("category") == "baseball" for v in visited)

    def test_selma_friend_structure(self):
        site = build_travel_site(TravelSiteConfig(seed=9))
        g = site.graph
        friends = {l.tgt for l in g.out_links(SELMA) if l.has_type("friend")}
        assert len(friends) >= 10
        # At least one friend visited a Barcelona family attraction.
        barcelona_family = [
            a for a in site.attractions_by_category.get("family", [])
            if "barcelona" in a
        ]
        assert barcelona_family
        visited_by_friends = {
            l.tgt for f in friends for l in g.out_links(f) if l.has_type("visit")
        }
        assert visited_by_friends & set(barcelona_family)

    def test_alexia_groups(self):
        site = build_travel_site(TravelSiteConfig(seed=9))
        g = site.graph
        groups = {l.tgt for l in g.out_links(ALEXIA) if l.has_type("belong")}
        assert groups == {"grp:history-class", "grp:soccer-team"}

    def test_containment_links(self):
        site = build_travel_site(TravelSiteConfig(seed=9))
        g = site.graph
        for att_id in site.attraction_ids[:10]:
            belongs = [l for l in g.out_links(att_id) if l.has_type("belong")]
            assert len(belongs) == 1
            assert g.node(belongs[0].tgt).has_type("city")

    def test_deterministic(self):
        a = build_travel_site(TravelSiteConfig(seed=9))
        b = build_travel_site(TravelSiteConfig(seed=9))
        assert a.graph.same_as(b.graph)


class TestTaggingSite:
    def test_counts_and_determinism(self):
        cfg = TaggingSiteConfig(num_users=60, num_items=100, num_tags=12, seed=2)
        a = build_tagging_site(cfg)
        b = build_tagging_site(cfg)
        assert a.graph.same_as(b.graph)
        assert len(a.user_ids) == 60
        assert len(a.tag_vocab) == 12

    def test_communities_cover_all_users(self):
        site = build_tagging_site(TaggingSiteConfig(num_users=60, seed=2))
        assert set(site.community_of) == set(site.user_ids)

    def test_network_community_cohesion(self):
        site = build_tagging_site(
            TaggingSiteConfig(num_users=100, community_cohesion=0.9, seed=2)
        )
        g = site.graph
        within = total = 0
        for link in g.links_of_type("friend"):
            total += 1
            if site.community_of[link.src] == site.community_of[link.tgt]:
                within += 1
        assert total > 0
        assert within / total > 0.6  # cohesion shows up in the topology

    def test_tag_links_carry_tags(self):
        site = build_tagging_site(TaggingSiteConfig(num_users=30, seed=2))
        tag_links = list(site.graph.links_of_type("tag"))
        assert tag_links
        assert all(l.values("tags") for l in tag_links)

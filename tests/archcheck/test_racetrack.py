"""Dynamic lockset race detection over the real plan-cache thread storm.

Two directions, both required: the detector must stay silent on the
correctly locked ``SharedPlanCache`` under genuine thread pressure, and
it must fire on a deliberately unlocked shared counter even when the
interleaving happens to be benign — that is the entire point of lockset
analysis over crash-hoping stress tests.
"""

from __future__ import annotations

import sys
import threading

import pytest

import factories
import repro.plan.cache as cache_module
from repro.plan import SharedPlanCache
from tools.archcheck.racetrack import RaceError, RaceTracker, TracedLock

THIS_MODULE = sys.modules[__name__]


class TestDetectorFires:
    def test_unlocked_shared_counter_is_a_race(self):
        tracker = RaceTracker()

        class Racy:
            def __init__(self):
                self.count = 0

        with tracker.trace():
            box = Racy()
            tracker.monitor(box)

            def bump():
                box.count += 1

            worker = threading.Thread(target=bump)
            worker.start()
            worker.join()
            box.count += 1  # second thread, no lock: lockset goes empty

        with pytest.raises(RaceError, match="Racy.count"):
            tracker.assert_race_free()

    def test_read_only_sharing_is_not_a_race(self):
        tracker = RaceTracker()

        class Frozen:
            def __init__(self):
                self.value = 7

        with tracker.trace():
            box = Frozen()
            tracker.monitor(box)
            seen = []
            reader = threading.Thread(target=lambda: seen.append(box.value))
            reader.start()
            reader.join()
            seen.append(box.value)

        tracker.assert_race_free()
        assert tracker.field_states()["Frozen.value"] == "shared"


class TestDetectorStaysSilent:
    def test_consistently_locked_counter_is_race_free(self):
        tracker = RaceTracker()
        with tracker.trace(THIS_MODULE):

            class Guarded:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

            box = Guarded()
            assert isinstance(box._lock, TracedLock)  # shim took effect
            tracker.monitor(box)
            threads = [
                threading.Thread(
                    target=lambda: [box.bump() for _ in range(200)]
                )
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with box._lock:
                total = box.count

        tracker.assert_race_free()
        assert total == 800
        assert tracker.field_states()["Guarded.count"] == "shared-modified"

    @pytest.mark.usefixtures("deadlock_watchdog")
    def test_shared_plan_cache_storm_is_race_free(self):
        graph = factories.social_site_graph()
        tracker = RaceTracker()
        with tracker.trace(cache_module):
            cache = SharedPlanCache(maxsize=32, admit_after=2)
            assert isinstance(cache._lock, TracedLock)
            tracker.monitor(cache)
            errors: list[BaseException] = []

            def worker(seed: int) -> None:
                try:
                    for i in range(200):
                        key = ("k", (seed * 7 + i) % 48)
                        generation = i % 3
                        got = cache.get(key, generation, anchor=graph)
                        if got is None:
                            cache.put(
                                key, generation, f"plan-{key}",
                                anchor=graph,  # type: ignore[arg-type]
                            )
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(seed,))
                for seed in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        tracker.assert_race_free()
        # the storm must actually have contended on the cache internals —
        # a detector that watched nothing would also report "race free"
        assert any(
            state in ("shared", "shared-modified")
            for state in tracker.field_states().values()
        ), tracker.field_states()

    def test_shim_is_restored_after_trace(self):
        tracker = RaceTracker()
        with tracker.trace(cache_module):
            assert cache_module.threading is not threading
        assert cache_module.threading is threading
        assert isinstance(cache_module.threading.Lock(), type(threading.Lock()))

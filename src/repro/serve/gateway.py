"""The asyncio serving gateway: admission → dynamic batching → execution.

:class:`ServeGateway` is the concurrent front door of one warm
:class:`~repro.api.Session`.  Many logical tenants submit
:class:`~repro.api.SearchRequest`\\ s concurrently; the gateway

1. runs **admission control** (:mod:`repro.serve.admission`): per-tenant
   spend budgets plus a global in-flight depth cap, shedding with a typed
   :class:`~repro.serve.admission.Overloaded` outcome instead of queueing
   unboundedly;
2. performs **dynamic batching**: admitted requests sharing a plan key
   (:func:`repro.serve.batching.batch_key`) within a short batching
   window coalesce into a single ``Session.run_many`` call — the shared
   plan cache compiles once and every other batch member is a cache hit
   over already-primed warm state;
3. executes batches on a bounded thread pool with **per-request error
   isolation** (``run_many(isolate_errors=True)``): one tenant's stale
   cursor returns that tenant a
   :class:`~repro.api.RequestFailure`, never aborting batch-mates.

Ready batches drain through a priority heap — (tenant priority class,
arrival order) — so interactive traffic goes first when the pool is
contended, and a batch keeps accumulating joiners while it waits for a
pool slot.

Concurrency model: ``submit`` must be called from the event loop the
gateway was started on (the load harness and the quickstart both drive it
with ``asyncio``; threads integrate via
``asyncio.run_coroutine_threadsafe``).  All loop-side state (pending
batches, the ready heap, counters) is therefore single-threaded by
construction; the pieces shared with worker threads — the admission
controller and the session itself — carry their own locks.
"""

from __future__ import annotations

import asyncio
import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.api import RequestFailure, SearchRequest, SearchResponse, Session
from repro.errors import QueryError, ServeError
from repro.serve.admission import (
    Admitted,
    AdmissionController,
    AdmissionPolicy,
    AdmissionStats,
    Overloaded,
)
from repro.serve.batching import batch_key, describe_key
from repro.serve.metrics import histogram_mean

#: What one submission resolves to.
ServeOutcome = SearchResponse | RequestFailure | Overloaded


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway tunables: batching shape, execution width, admission."""

    #: how long the first request of a plan key waits for batch-mates
    batch_window_s: float = 0.004
    #: flush a batch early once it reaches this size
    max_batch: int = 16
    #: worker threads — concurrent ``run_many`` batches in flight
    max_concurrent_batches: int = 4
    #: plan-executor mode pinned onto the session's planner at gateway
    #: construction ("auto"/"never"/"force"/"threads"/"processes"); None
    #: leaves the session's configured mode untouched
    parallelism: str | None = None
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)


@dataclass(frozen=True)
class KeyStats:
    """Per-plan-key batching accounting (hot-key reporting)."""

    label: str
    requests: int
    batches: int

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


@dataclass(frozen=True)
class GatewayStats:
    """One snapshot of the gateway's serving counters."""

    submitted: int
    completed: int
    failed: int
    shed: int
    batches: int
    #: batch size -> number of batches executed at that size
    batch_size_histogram: Mapping[int, int]
    #: per plan key: requests and batches (hot-key mean batch sizes)
    keys: Mapping[str, KeyStats]
    admission: AdmissionStats

    @property
    def mean_batch_size(self) -> float:
        return histogram_mean(self.batch_size_histogram)

    def hot_keys(self, n: int = 5) -> list[KeyStats]:
        """The *n* most-requested plan keys, busiest first."""
        ranked = sorted(
            self.keys.values(), key=lambda ks: (-ks.requests, ks.label)
        )
        return ranked[:n]


class _PendingBatch:
    """Requests accumulating under one plan key until flush."""

    __slots__ = ("key", "seq", "priority", "entries", "timer", "ready")

    def __init__(self, key: SearchRequest, seq: int, priority: int):
        self.key = key
        self.seq = seq
        self.priority = priority
        #: (request, future, ticket) triples in arrival order
        self.entries: list[
            tuple[SearchRequest, "asyncio.Future[ServeOutcome]", Admitted]
        ] = []
        self.timer: asyncio.TimerHandle | None = None
        self.ready = False

    def __lt__(self, other: "_PendingBatch") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class ServeGateway:
    """The async serving front of one warm session (see module doc)."""

    def __init__(self, session: Session, config: GatewayConfig | None = None):
        self.session = session
        self.config = config if config is not None else GatewayConfig()
        if self.config.max_batch < 1:
            raise ServeError(
                f"max_batch must be >= 1, got {self.config.max_batch!r}"
            )
        if self.config.max_concurrent_batches < 1:
            raise ServeError(
                "max_concurrent_batches must be >= 1, got "
                f"{self.config.max_concurrent_batches!r}"
            )
        if self.config.parallelism is not None:
            try:
                session.set_parallelism(self.config.parallelism)
            except QueryError as error:
                raise ServeError(str(error)) from error
        self.admission = AdmissionController(self.config.admission)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._dispatcher: asyncio.Task[None] | None = None
        self._pending: dict[SearchRequest, _PendingBatch] = {}
        self._ready: list[_PendingBatch] = []
        self._ready_event: asyncio.Event | None = None
        self._slots: asyncio.Semaphore | None = None
        self._open = 0
        self._drained: asyncio.Event | None = None
        self._seq = 0
        self._running = False
        # counters (event-loop thread only)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._batches = 0
        self._batch_sizes: dict[int, int] = {}
        self._key_requests: dict[str, int] = {}
        self._key_batches: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind to the running loop and start the dispatcher."""
        if self._running:
            raise ServeError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent_batches,
            thread_name_prefix="serve-batch",
        )
        self._ready_event = asyncio.Event()
        self._slots = asyncio.Semaphore(self.config.max_concurrent_batches)
        self._drained = asyncio.Event()
        self._drained.set()
        self._running = True
        self._dispatcher = self._loop.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop accepting, drain in-flight work, release the pool."""
        if not self._running:
            return
        self._running = False
        # flush every accumulating batch now — nothing new can join
        for batch in list(self._pending.values()):
            self._flush(batch)
        if self._drained is not None:
            await self._drained.wait()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "ServeGateway":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- serving --------------------------------------------------------------

    async def submit(
        self, tenant: str, request: SearchRequest
    ) -> ServeOutcome:
        """One tenant's request: admitted+batched+executed, or shed.

        Returns a :class:`SearchResponse` on success, a
        :class:`RequestFailure` when this request's own evaluation raised,
        or a typed :class:`Overloaded` when admission shed it.  Never
        raises for per-request conditions — callers fan out thousands of
        these concurrently and pattern-match the outcome.
        """
        if not self._running or self._loop is None:
            raise ServeError("gateway is not running (use `async with`)")
        self._submitted += 1
        verdict = self.admission.admit(tenant)
        if isinstance(verdict, Overloaded):
            self._shed += 1
            return verdict
        future: "asyncio.Future[ServeOutcome]" = self._loop.create_future()
        self._track_open(+1)
        key = batch_key(request)
        batch = self._pending.get(key)
        if batch is None:
            self._seq += 1
            batch = _PendingBatch(key, self._seq, verdict.priority)
            self._pending[key] = batch
            batch.timer = self._loop.call_later(
                self.config.batch_window_s, self._flush, batch
            )
        batch.entries.append((request, future, verdict))
        if not batch.ready:
            # heap ordering key — frozen once the batch is in the heap
            batch.priority = min(batch.priority, verdict.priority)
        if len(batch.entries) >= self.config.max_batch:
            self._flush(batch)
            self._retire(batch)
        try:
            return await future
        finally:
            self._track_open(-1)

    # -- durability -----------------------------------------------------------

    async def checkpoint(self, directory: str | Path) -> dict[str, Any]:
        """Drain, then snapshot the serving site into *directory*.

        Quiesce protocol: every accumulating batch is flushed, then all
        pool slots are acquired — no batch is executing and none can
        start — and the session checkpoints
        (:meth:`~repro.api.Session.save`) on the loop's *default*
        executor (our own pool is deliberately full).  Slots release in
        dispatch order afterwards, so serving resumes exactly where it
        paused; submissions arriving mid-checkpoint simply queue behind
        the held slots.  Returns the snapshot manifest.
        """
        if not self._running or self._loop is None or self._slots is None:
            raise ServeError("gateway is not running (use `async with`)")
        for batch in list(self._pending.values()):
            self._flush(batch)
        width = self.config.max_concurrent_batches
        for _ in range(width):
            await self._slots.acquire()
        try:
            return await self._loop.run_in_executor(
                None, lambda: self.session.save(directory)
            )
        finally:
            for _ in range(width):
                self._slots.release()

    # -- batching internals ---------------------------------------------------

    def _track_open(self, delta: int) -> None:
        self._open += delta
        if self._drained is None:
            return
        if self._open <= 0:
            self._drained.set()
        else:
            self._drained.clear()

    def _flush(self, batch: _PendingBatch) -> None:
        """Hand *batch* to the dispatcher (idempotent).

        The batch stays *joinable* — it remains in the pending map, so
        same-key arrivals keep coalescing into it while it waits for a
        pool slot (that wait dominates the batching window under load).
        It stops accepting joiners only when full (:meth:`_retire` at
        ``max_batch``) or actually dispatched.
        """
        if batch.ready:
            return
        batch.ready = True
        if batch.timer is not None:
            batch.timer.cancel()
        heapq.heappush(self._ready, batch)
        if self._ready_event is not None:
            self._ready_event.set()

    def _retire(self, batch: _PendingBatch) -> None:
        """Stop *batch* from accepting joiners (full or dispatching)."""
        if self._pending.get(batch.key) is batch:
            del self._pending[batch.key]

    async def _dispatch_loop(self) -> None:
        """Drain ready batches into pool slots, best priority first."""
        assert self._ready_event is not None and self._slots is not None
        while True:
            await self._ready_event.wait()
            if not self._ready:
                self._ready_event.clear()
                continue
            # take a slot first: while we wait, joiners keep accumulating
            # in *pending* batches and higher-priority batches may become
            # ready — the pop below happens at dispatch time.
            await self._slots.acquire()
            if not self._ready:
                self._slots.release()
                self._ready_event.clear()
                continue
            batch = heapq.heappop(self._ready)
            # close the joining window *now*, on the loop thread, before
            # the executing task snapshots the entry list
            self._retire(batch)
            if not self._ready:
                self._ready_event.clear()
            assert self._loop is not None
            self._loop.create_task(self._run_batch(batch))

    async def _run_batch(self, batch: _PendingBatch) -> None:
        """Execute one sealed batch on the pool; resolve its futures."""
        assert self._loop is not None and self._slots is not None
        requests = [request for request, _, _ in batch.entries]
        try:
            outcomes = await self._loop.run_in_executor(
                self._executor,
                lambda: self.session.run_many(requests, isolate_errors=True),
            )
        except Exception as exc:
            # batch-level failure (e.g. refresh blew up): every member
            # gets a failure outcome — the gateway itself stays up.
            outcomes = [
                RequestFailure(
                    request=request,
                    kind=type(exc).__name__,
                    message=str(exc),
                    error=exc,
                )
                for request in requests
            ]
        finally:
            self._slots.release()
            for _, _, ticket in batch.entries:
                self.admission.release(ticket)
        self._record_batch(batch, outcomes)
        for (_, future, _), outcome in zip(batch.entries, outcomes):
            if not future.done():
                future.set_result(outcome)

    def _record_batch(
        self, batch: _PendingBatch, outcomes: list[SearchResponse | RequestFailure]
    ) -> None:
        size = len(batch.entries)
        self._batches += 1
        self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
        label = describe_key(batch.key)
        self._key_requests[label] = self._key_requests.get(label, 0) + size
        self._key_batches[label] = self._key_batches.get(label, 0) + 1
        for outcome in outcomes:
            if isinstance(outcome, RequestFailure):
                self._failed += 1
            else:
                self._completed += 1

    # -- introspection --------------------------------------------------------

    def stats(self) -> GatewayStats:
        """A snapshot of the serving counters (loop thread)."""
        keys = {
            label: KeyStats(
                label=label,
                requests=requests,
                batches=self._key_batches.get(label, 0),
            )
            for label, requests in self._key_requests.items()
        }
        return GatewayStats(
            submitted=self._submitted,
            completed=self._completed,
            failed=self._failed,
            shed=self._shed,
            batches=self._batches,
            batch_size_histogram=dict(self._batch_sizes),
            keys=keys,
            admission=self.admission.stats(),
        )

    def plan_cache_stats(self) -> dict[str, object]:
        """The site-wide shared plan-cache counters (management endpoint)."""
        return self.session.data_manager.plan_cache_stats()


__all__ = [
    "GatewayConfig",
    "GatewayStats",
    "KeyStats",
    "ServeGateway",
    "ServeOutcome",
]

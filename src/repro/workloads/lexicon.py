"""Shared travel-query lexicons: the domain knowledge behind Table 1.

The paper: "By leveraging the domain knowledge we have about geographical
locations and travel destinations, we detect location terms in queries and
classify each query into three classes: general, categorical, and
specific."  This module is that domain knowledge for the reproduction —
a location gazetteer, the general/categorical term lists, and a catalog of
specific destinations.  Both the query *generator*
(:mod:`repro.workloads.queries`) and the *classifier*
(:mod:`repro.discovery.classify`) consume it, mirroring how Yahoo!'s
analysts and their classifier shared one gazetteer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.text import tokenize

#: Location gazetteer (cities/regions users mention in travel queries).
LOCATIONS: tuple[str, ...] = (
    "denver", "barcelona", "paris", "london", "boston", "chicago",
    "seattle", "austin", "philadelphia", "washington", "orlando",
    "san francisco", "new york", "miami", "portland", "nashville",
    "colorado", "california", "florida", "texas", "spain", "france",
    "rome", "tokyo", "sydney", "vancouver", "amsterdam", "berlin",
    "vegas", "las vegas", "hawaii", "alaska", "arizona", "utah",
)

#: Terms marking *general* queries ("things to do", "attraction", ...).
GENERAL_TERMS: tuple[str, ...] = (
    "things to do", "attractions", "attraction", "what to see",
    "places to visit", "sightseeing", "tourist spots", "travel guide",
    "vacation ideas", "points of interest", "best places",
)

#: Terms marking *categorical* queries ("hotel", "family", "historic", ...).
CATEGORICAL_TERMS: tuple[str, ...] = (
    "hotel", "hotels", "family", "historic", "restaurants", "restaurant",
    "museum", "museums", "beach", "beaches", "nightlife", "shopping",
    "kids", "romantic", "budget", "luxury", "camping", "hiking",
    "baseball", "golf", "ski", "skiing", "spa", "zoo", "casino",
)

#: Specific destinations (name, implied location) — "Disneyland",
#: "Yosemite Park" per the paper's examples.
SPECIFIC_DESTINATIONS: tuple[tuple[str, str], ...] = (
    ("disneyland", "california"), ("yosemite park", "california"),
    ("coors field", "denver"), ("sagrada familia", "barcelona"),
    ("eiffel tower", "paris"), ("louvre", "paris"),
    ("fisherman's wharf", "san francisco"), ("alcatraz", "san francisco"),
    ("fenway park", "boston"), ("wrigley field", "chicago"),
    ("space needle", "seattle"), ("alamo", "texas"),
    ("liberty bell", "philadelphia"), ("statue of liberty", "new york"),
    ("central park", "new york"), ("grand canyon", "arizona"),
    ("yellowstone", "wyoming"), ("niagara falls", "new york"),
    ("golden gate bridge", "san francisco"), ("times square", "new york"),
)

#: Filler noise vocabulary for unclassifiable queries (~10% in Table 1).
NOISE_TERMS: tuple[str, ...] = (
    "cheap flights", "jfk blue", "qzx", "wifi password", "horoscope",
    "car parts", "phone number", "lyrics", "download", "login",
    "map quest", "driving test", "tax forms", "weather radar",
)


@dataclass(frozen=True)
class TravelLexicon:
    """Bundled lexicons with tokenised phrase indexes for fast matching."""

    locations: tuple[str, ...] = LOCATIONS
    general_terms: tuple[str, ...] = GENERAL_TERMS
    categorical_terms: tuple[str, ...] = CATEGORICAL_TERMS
    specific_destinations: tuple[tuple[str, str], ...] = SPECIFIC_DESTINATIONS
    _phrase_index: dict = field(default_factory=dict, compare=False, repr=False)

    def _phrases(self, kind: str) -> list[tuple[str, ...]]:
        """Tokenised phrases of a lexicon, cached and length-sorted."""
        cached = self._phrase_index.get(kind)
        if cached is not None:
            return cached
        source: tuple[str, ...]
        if kind == "locations":
            source = self.locations
        elif kind == "general":
            source = self.general_terms
        elif kind == "categorical":
            source = self.categorical_terms
        elif kind == "specific":
            source = tuple(name for name, _ in self.specific_destinations)
        else:
            raise KeyError(kind)
        phrases = sorted(
            (tuple(tokenize(p)) for p in source), key=len, reverse=True
        )
        self._phrase_index[kind] = phrases
        return phrases

    def contains_phrase(self, tokens: list[str], kind: str) -> bool:
        """True when any *kind* phrase occurs as a contiguous token run."""
        token_tuple = tuple(tokens)
        n = len(token_tuple)
        for phrase in self._phrases(kind):
            width = len(phrase)
            if width == 0 or width > n:
                continue
            for start in range(n - width + 1):
                if token_tuple[start : start + width] == phrase:
                    return True
        return False


#: Module-level default lexicon instance.
DEFAULT_LEXICON = TravelLexicon()

"""Tests for grouping mechanisms, meaningfulness, and ranking (§7)."""

from __future__ import annotations

import pytest

from repro.discovery import InformationDiscoverer
from repro.presentation import (
    MeaningfulnessWeights,
    ResultSelector,
    balance_score,
    choose_grouping,
    count_score,
    endorser_group_grouping,
    meaningfulness,
    quality_score,
    social_grouping,
    structural_grouping,
    topical_grouping,
)
from repro.workloads import ALEXIA, JOHN, TravelSiteConfig, build_travel_site


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture(scope="module")
def john_msg(travel):
    return InformationDiscoverer(travel.graph).discover(
        JOHN, "Denver attractions"
    )


@pytest.fixture(scope="module")
def alexia_msg(travel):
    return InformationDiscoverer(travel.graph).discover(ALEXIA, "history")


class TestGroupings:
    def test_social_grouping_partitions(self, john_msg):
        grouping = social_grouping(john_msg, theta=0.3)
        assert grouping.covers(john_msg.item_ids)
        assert grouping.num_groups >= 1

    def test_social_grouping_theta_extremes(self, john_msg):
        ungrouped = social_grouping(john_msg, theta=1.01)
        merged = social_grouping(john_msg, theta=0.0)
        assert ungrouped.num_groups >= merged.num_groups
        assert merged.num_groups == 1

    def test_structural_grouping_by_category(self, john_msg, travel):
        grouping = structural_grouping(john_msg, "category")
        assert grouping.covers(john_msg.item_ids)
        for group in grouping.groups:
            values = {
                str(travel.graph.node(i).value("category", "(none)"))
                for i in group.items
            }
            assert len(values) == 1

    def test_structural_grouping_by_city(self, john_msg):
        grouping = structural_grouping(john_msg, "city")
        assert grouping.covers(john_msg.item_ids)
        assert all(g.label.startswith("city:") for g in grouping.groups)

    def test_topical_grouping_without_topics_is_misc(self, john_msg):
        grouping = topical_grouping(john_msg)
        assert grouping.covers(john_msg.item_ids)
        assert any(g.label == "other topics" for g in grouping.groups)

    def test_endorser_grouping_alexia(self, alexia_msg, travel):
        grouping = endorser_group_grouping(alexia_msg, travel.graph)
        labels = {g.label for g in grouping.groups}
        assert any("history class" in label for label in labels)
        assert grouping.covers(alexia_msg.item_ids)


class TestMeaningfulness:
    def test_count_score_prefers_ideal(self):
        weights = MeaningfulnessWeights(ideal_groups=4, max_groups=8)
        assert count_score(4, weights) == 1.0
        assert count_score(1, weights) == 0.0
        assert count_score(8, weights) < count_score(4, weights)
        assert count_score(20, weights) <= count_score(8, weights)

    def test_balance_prefers_even_groups(self, john_msg):
        even = structural_grouping(john_msg, "category")
        lopsided = social_grouping(john_msg, theta=0.0)  # one big group
        assert balance_score(even) > balance_score(lopsided)

    def test_quality_uses_msg_scores(self, john_msg):
        grouping = structural_grouping(john_msg, "category")
        assert quality_score(grouping, john_msg) > 0

    def test_meaningfulness_in_unit_interval(self, john_msg):
        for grouping in (
            social_grouping(john_msg, 0.3),
            structural_grouping(john_msg, "category"),
        ):
            value = meaningfulness(grouping, john_msg)
            assert 0.0 <= value <= 1.0

    def test_choose_grouping_returns_best(self, john_msg):
        candidates = [
            social_grouping(john_msg, 0.3),
            structural_grouping(john_msg, "category"),
            topical_grouping(john_msg),
        ]
        winner, scores = choose_grouping(candidates, john_msg)
        assert winner.dimension in scores
        assert scores[winner.dimension] == max(scores.values())

    def test_choose_grouping_requires_candidates(self, john_msg):
        with pytest.raises(ValueError):
            choose_grouping([], john_msg)


class TestResultSelector:
    def test_rank_within_descending(self, john_msg):
        grouping = structural_grouping(john_msg, "category")
        selector = ResultSelector()
        ranked = selector.rank_within(grouping.groups[0], john_msg)
        scores = [s for _, s in ranked.items]
        assert scores == sorted(scores, reverse=True)

    def test_rank_groups_by_mean_relevance(self, john_msg):
        grouping = structural_grouping(john_msg, "category")
        ranked = ResultSelector().rank_groups(grouping, john_msg)
        means = [g.group_score for g in ranked]
        assert means == sorted(means, reverse=True)

    def test_interleave_round_robin(self, john_msg):
        grouping = structural_grouping(john_msg, "category")
        selector = ResultSelector()
        ranked = selector.rank_groups(grouping, john_msg)
        flat = selector.interleave(ranked, 6)
        assert len(flat) <= 6
        assert len({i for i, _ in flat}) == len(flat)  # no duplicates
        if len(ranked) >= 2 and len(flat) >= 2:
            # first two entries come from two different groups
            first_group = {i for i, _ in ranked[0].items}
            assert flat[1][0] not in first_group or len(ranked) == 1

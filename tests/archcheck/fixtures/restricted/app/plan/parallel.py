"""The one module the config allows to touch multiprocessing."""

from multiprocessing import shared_memory


def attach(name):
    return shared_memory.SharedMemory(name)

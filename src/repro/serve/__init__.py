"""repro.serve — the concurrent serving front of a SocialScope site.

The layers below (:mod:`repro.api` downwards) answer *one* query well;
this package answers *many at once*: an asyncio gateway
(:class:`ServeGateway`) that admission-controls per-tenant traffic
(:mod:`repro.serve.admission`), coalesces concurrent same-plan requests
into dynamic batches (:mod:`repro.serve.batching`), and executes them on
a bounded pool with per-request error isolation.  The closed-loop load
harness (:mod:`repro.serve.loadgen`) replays the paper's power-law
traffic shape against it.
"""

from __future__ import annotations

from repro.serve.admission import (
    GLOBAL_DEPTH,
    TENANT_BUDGET,
    Admitted,
    AdmissionController,
    AdmissionPolicy,
    AdmissionStats,
    DeadlineExceeded,
    Overloaded,
    TenantPolicy,
)
from repro.serve.batching import EXECUTION_ONLY_FIELDS, batch_key, describe_key
from repro.serve.gateway import (
    GatewayConfig,
    GatewayStats,
    KeyStats,
    ServeGateway,
    ServeOutcome,
)
from repro.serve.metrics import latency_summary, peak_rss_mb, percentile
from repro.serve.resilience import HedgeTracker, breaker_snapshot

__all__ = [
    "TENANT_BUDGET",
    "GLOBAL_DEPTH",
    "TenantPolicy",
    "AdmissionPolicy",
    "Overloaded",
    "DeadlineExceeded",
    "Admitted",
    "AdmissionStats",
    "AdmissionController",
    "batch_key",
    "describe_key",
    "EXECUTION_ONLY_FIELDS",
    "GatewayConfig",
    "GatewayStats",
    "KeyStats",
    "ServeGateway",
    "ServeOutcome",
    "percentile",
    "latency_summary",
    "peak_rss_mb",
    "HedgeTracker",
    "breaker_snapshot",
]

"""Unit tests for graph patterns and γL⟨GP,att,A⟩ (paper §5.4, Figure 2)."""

from __future__ import annotations

import pytest

from repro.core import (
    Link,
    Node,
    PathCount,
    PathLinkAvg,
    PathLinkSum,
    PathPattern,
    SocialContentGraph,
    Step,
    aggregate_pattern,
    figure2_pattern,
    find_paths,
)
from repro.errors import PatternError


@pytest.fixture
def match_visit_graph():
    """John --match(sim)--> {ann, cat} --visit--> destinations.

    ann(sim=.6) visits d1, d2; cat(sim=1.0) visits d1.
    """
    g = SocialContentGraph()
    g.add_node(Node(101, type="user", name="john"))
    for u in ("ann", "cat"):
        g.add_node(Node(u, type="user"))
    for d in ("d1", "d2"):
        g.add_node(Node(d, type="item, destination"))
    g.add_link(Link("m-ann", 101, "ann", type="match", sim=0.6))
    g.add_link(Link("m-cat", 101, "cat", type="match", sim=1.0))
    g.add_link(Link("v1", "ann", "d1", type="visit"))
    g.add_link(Link("v2", "ann", "d2", type="visit"))
    g.add_link(Link("v3", "cat", "d1", type="visit"))
    return g


class TestPatternConstruction:
    def test_needs_steps(self):
        with pytest.raises(PatternError):
            PathPattern(start={"id": 1}, steps=[])

    def test_bad_direction(self):
        with pytest.raises(PatternError):
            Step(direction="sideways")

    def test_figure2_shape(self):
        pattern = figure2_pattern(101)
        assert len(pattern) == 2


class TestFindPaths:
    def test_figure2_bindings(self, match_visit_graph):
        paths = find_paths(match_visit_graph, figure2_pattern(101))
        ends = sorted((p.start.id, p.end.id) for p in paths)
        assert ends == [(101, "d1"), (101, "d1"), (101, "d2")]

    def test_path_records_links(self, match_visit_graph):
        paths = find_paths(match_visit_graph, figure2_pattern(101))
        for p in paths:
            assert p.links[0].has_type("match")
            assert p.links[1].has_type("visit")
            assert len(p.nodes) == 3

    def test_node_condition_filters(self, match_visit_graph):
        pattern = PathPattern(
            start={"id": 101},
            steps=[
                Step(link={"type": "match"}),
                Step(link={"type": "visit"}, node={"id": "d2"}),
            ],
        )
        paths = find_paths(match_visit_graph, pattern)
        assert [(p.start.id, p.end.id) for p in paths] == [(101, "d2")]

    def test_inverse_direction(self, match_visit_graph):
        # Who visited d1?  d1 <-visit- user.
        pattern = PathPattern(
            start={"id": "d1"},
            steps=[Step(link={"type": "visit"}, direction="in")],
        )
        paths = find_paths(match_visit_graph, pattern)
        assert sorted(p.end.id for p in paths) == ["ann", "cat"]

    def test_no_match(self, match_visit_graph):
        paths = find_paths(match_visit_graph, figure2_pattern(999))
        assert paths == []

    def test_deterministic_order(self, match_visit_graph):
        a = find_paths(match_visit_graph, figure2_pattern(101))
        b = find_paths(match_visit_graph, figure2_pattern(101))
        assert [(p.start.id, p.end.id) for p in a] == [
            (p.start.id, p.end.id) for p in b
        ]

    def test_link_value_helper(self, match_visit_graph):
        paths = find_paths(match_visit_graph, figure2_pattern(101))
        sims = {p.link_value(0, "sim") for p in paths}
        assert sims == {0.6, 1.0}


class TestAggregatePattern:
    def test_figure2_aggregation(self, match_visit_graph):
        # One link per (john, dest); score = avg sim on the match link.
        result = aggregate_pattern(
            match_visit_graph, figure2_pattern(101), "score",
            PathLinkAvg(0, "sim"),
        )
        scores = {l.tgt: l.value("score") for l in result.links()}
        assert scores["d1"] == pytest.approx(0.8)  # avg(.6, 1.0)
        assert scores["d2"] == pytest.approx(0.6)

    def test_one_link_per_pair(self, match_visit_graph):
        result = aggregate_pattern(
            match_visit_graph, figure2_pattern(101), "score", PathCount()
        )
        assert result.num_links == 2
        counts = {l.tgt: l.value("score") for l in result.links()}
        assert counts == {"d1": 2, "d2": 1}

    def test_sum_aggregation(self, match_visit_graph):
        result = aggregate_pattern(
            match_visit_graph, figure2_pattern(101), "s", PathLinkSum(0, "sim")
        )
        sums = {l.tgt: l.value("s") for l in result.links()}
        assert sums["d1"] == pytest.approx(1.6)

    def test_output_contains_only_endpoints(self, match_visit_graph):
        result = aggregate_pattern(
            match_visit_graph, figure2_pattern(101), "score", PathCount()
        )
        assert result.node_ids() == {101, "d1", "d2"}

    def test_agg_size_on_links(self, match_visit_graph):
        result = aggregate_pattern(
            match_visit_graph, figure2_pattern(101), "score", PathCount()
        )
        sizes = {l.tgt: l.value("agg_size") for l in result.links()}
        assert sizes == {"d1": 2, "d2": 1}

    def test_empty_graph(self):
        g = SocialContentGraph()
        result = aggregate_pattern(g, figure2_pattern(1), "s", PathCount())
        assert result.is_empty()

"""archcheck: AST architecture linter for the SocialScope reproduction.

Four rule families (see the sibling modules for the rule catalogue):

* ``layering``     — L001/L002/L003, the allowed import DAG
* ``concurrency``  — C001/C002/C003, lock discipline
* ``determinism``  — D001/D002/D003, plan-kernel determinism
* ``purity``       — P001, read-only input graphs on execute paths

plus :mod:`tools.archcheck.racetrack`, a dynamic Eraser-style lockset
race detector used by the thread-storm tests.

Run ``python -m tools.archcheck src/`` from the repo root.
"""

from tools.archcheck.findings import Finding, Module, collect_modules
from tools.archcheck.runner import Report, check_paths, run_check, run_rules

__all__ = [
    "Finding",
    "Module",
    "Report",
    "check_paths",
    "collect_modules",
    "run_check",
    "run_rules",
]

"""Stable hash partitioning of record ids.

The one routing function both the physical store
(:class:`repro.management.storage.PartitionedGraphStore`) and the plan
layer's columnar scatter views (:func:`repro.plan.columnar.cut_columnar_views`)
agree on.  It lives in ``repro.core`` because both sides need it and the
layering DAG (see ``docs/ARCHITECTURE.md``) forbids the plan layer from
importing the management layer: the store sits *above* the compiler (it
manages plan caches), so a ``plan → management`` import would close a
package cycle.
"""

from __future__ import annotations

import zlib

from repro.core.graph import Id


def shard_of(record_id: Id, num_shards: int) -> int:
    """Stable hash partition of a record id.

    Process-independent (unlike ``hash(str)``) so shard assignment — and
    therefore per-shard scan order — is reproducible across runs.
    """
    return zlib.crc32(repr(record_id).encode("utf-8")) % num_shards

"""Tiny text utilities shared by keyword conditions and scoring functions.

The paper's conditions carry "a set of keywords (e.g., 'Denver attraction')".
Keyword matching throughout the library uses the same tokenisation so that
selection satisfaction, semantic-relevance scores and the query classifier
agree on what a term is.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Minimal English stopword list; enough to keep scoring sane on the
#: synthetic workloads without dragging in a full NLP dependency.
STOPWORDS: frozenset[str] = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "by", "for", "from",
        "in", "into", "is", "it", "of", "on", "or", "the", "to", "with",
    }
)


def tokenize(text: str, *, drop_stopwords: bool = False) -> list[str]:
    """Lowercase and split *text* into alphanumeric tokens.

    >>> tokenize("Denver attractions!")
    ['denver', 'attractions']
    """
    tokens = _TOKEN_RE.findall(text.lower())
    if drop_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return tokens


def term_frequencies(text: str) -> Counter:
    """Token -> count mapping for *text*."""
    return Counter(tokenize(text))


def keyword_terms(keywords: Iterable[str]) -> list[str]:
    """Flatten a keyword collection into tokens.

    Keywords may arrive as phrases (``'near Denver'``); each phrase is
    tokenised and the tokens concatenated, preserving order and duplicates
    (duplicates express emphasis in tf-style scorers).
    """
    terms: list[str] = []
    for keyword in keywords:
        terms.extend(tokenize(str(keyword)))
    return terms


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """All n-grams of the token list (used by the query classifier)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def term_variants(term: str) -> tuple[str, ...]:
    """The term plus its naive singular/plural forms.

    Keyword matching treats "attraction" and "attractions" as the same
    need — the light normalisation real search stacks apply.  Deliberately
    naive (just ±'s'): anything smarter belongs to a stemmer the paper
    does not call for.
    """
    variants = [term]
    if term.endswith("s") and len(term) > 3:
        variants.append(term[:-1])
    else:
        variants.append(term + "s")
    return tuple(variants)

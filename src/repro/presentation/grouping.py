"""Result grouping mechanisms (paper §7.1).

    "there are many different mechanisms for grouping items in I_Qu:
    Social Grouping, which defines item groups based on similarity or
    closeness between users who endorsed the items; Topical Grouping,
    which defines item groups using the abstract topics each item belongs
    to; Structural Grouping, which relies on similarity in items'
    attributes."

Definition 14 (social grouping) puts two items in one group when the
Jaccard similarity of their tagger sets reaches θ; like the §6.2 clustering
definitions it is a pairwise predicate, realised with the same
deterministic greedy leader clustering.  Endorser-group grouping (Alexia's
"her classmates ... or her friends on the soccer team") is the social
variant keyed on the *user groups* of the endorsers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.similarity import jaccard
from repro.core import Id, SocialContentGraph
from repro.discovery.msg import MeaningfulSocialGraph


@dataclass
class Group:
    """One displayed group of result items."""

    label: str
    dimension: str  # 'social' | 'topical' | 'structural:<att>' | 'endorser'
    items: list[Id] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of items in the group."""
        return len(self.items)


@dataclass
class GroupingResult:
    """A full partition of the result set along one dimension."""

    dimension: str
    groups: list[Group] = field(default_factory=list)

    @property
    def num_groups(self) -> int:
        """Number of groups."""
        return len(self.groups)

    def covers(self, items: Sequence[Id]) -> bool:
        """True when the groups partition exactly the given items."""
        seen: set[Id] = set()
        for group in self.groups:
            for item in group.items:
                if item in seen:
                    return False
                seen.add(item)
        return seen == set(items)


def _taggers(graph: SocialContentGraph, item: Id) -> set[Id]:
    """Users with an activity link onto the item (§7's taggers(i))."""
    return {l.src for l in graph.in_links(item) if l.has_type("act")}


def social_grouping(
    msg: MeaningfulSocialGraph,
    theta: float = 0.3,
) -> GroupingResult:
    """Definition 14: leader-cluster items by tagger-set Jaccard ≥ θ.

    Groups are labelled by their most active endorser ("endorsed by
    user…"), the information a user can actually interpret.
    """
    graph = msg.graph
    items = msg.item_ids
    taggers = {i: _taggers(graph, i) for i in items}
    leaders: list[Id] = []
    clusters: list[list[Id]] = []
    for item in items:  # msg order = best first, so leaders are top items
        placed = False
        for index, leader in enumerate(leaders):
            if jaccard(taggers[item], taggers[leader]) >= theta:
                clusters[index].append(item)
                placed = True
                break
        if not placed:
            leaders.append(item)
            clusters.append([item])
    groups = []
    for cluster in clusters:
        endorsers: dict[Id, int] = {}
        for item in cluster:
            for user in taggers[item]:
                endorsers[user] = endorsers.get(user, 0) + 1
        if endorsers:
            top = max(endorsers.items(), key=lambda kv: (kv[1], repr(kv[0])))
            label = f"endorsed by {_user_label(graph, top[0])} (+{len(endorsers) - 1} others)"
        else:
            label = "no endorsements"
        groups.append(Group(label=label, dimension="social", items=cluster))
    return GroupingResult(dimension="social", groups=groups)


def _user_label(graph: SocialContentGraph, user: Id) -> str:
    if graph.has_node(user):
        name = graph.node(user).value("name")
        if name:
            return str(name)
    return str(user)


def topical_grouping(msg: MeaningfulSocialGraph) -> GroupingResult:
    """Group by the topic each item belongs to (derived ``belong`` links).

    Items without topic links fall into a 'misc' group; the topic node's
    keywords label the group.
    """
    graph = msg.graph
    by_topic: dict[Id, list[Id]] = {}
    misc: list[Id] = []
    for item in msg.item_ids:
        topics = [
            l.tgt for l in graph.out_links(item)
            if l.has_type("belong") and graph.node(l.tgt).has_type("topic")
        ]
        if not topics:
            misc.append(item)
            continue
        # strongest topic wins (highest prob attribute, then id)
        def strength(topic_id: Id) -> tuple:
            for l in graph.out_links(item):
                if l.tgt == topic_id and l.has_type("belong"):
                    return (float(l.value("prob", 0.0)), repr(topic_id))
            return (0.0, repr(topic_id))

        best = max(topics, key=strength)
        by_topic.setdefault(best, []).append(item)
    groups = []
    for topic_id, items in sorted(by_topic.items(), key=lambda kv: repr(kv[0])):
        keywords = graph.node(topic_id).value("keywords", str(topic_id))
        groups.append(
            Group(label=f"topic: {keywords}", dimension="topical", items=items)
        )
    if misc:
        groups.append(Group(label="other topics", dimension="topical", items=misc))
    return GroupingResult(dimension="topical", groups=groups)


def structural_grouping(
    msg: MeaningfulSocialGraph, attribute: str
) -> GroupingResult:
    """Facet-style grouping on an item attribute (e.g. ``city``,
    ``category``)."""
    graph = msg.graph
    by_value: dict[str, list[Id]] = {}
    for item in msg.item_ids:
        values = graph.node(item).values(attribute)
        key = str(values[0]) if values else "(none)"
        by_value.setdefault(key, []).append(item)
    groups = [
        Group(label=f"{attribute}: {value}", dimension=f"structural:{attribute}",
              items=items)
        for value, items in sorted(by_value.items())
    ]
    return GroupingResult(dimension=f"structural:{attribute}", groups=groups)


def endorser_group_grouping(
    msg: MeaningfulSocialGraph,
    base: SocialContentGraph,
) -> GroupingResult:
    """Alexia's grouping: by which user-group endorsed each item.

    An item lands in the group (e.g. 'history class') whose members
    produced most of its endorsements; items with no group-affiliated
    endorsers fall into 'other travelers'.  Requires ``belong, member``
    links from users to ``group`` nodes in the *base* graph.
    """
    membership: dict[Id, set[Id]] = {}
    for link in base.links():
        if link.has_type("member") and base.has_node(link.tgt):
            if base.node(link.tgt).has_type("group"):
                membership.setdefault(link.src, set()).add(link.tgt)
    by_group: dict[Id, list[Id]] = {}
    other: list[Id] = []
    for item in msg.item_ids:
        votes: dict[Id, int] = {}
        for user in msg.taggers_of(item) | set(msg.endorsers_of(item)):
            for group_id in membership.get(user, ()):
                votes[group_id] = votes.get(group_id, 0) + 1
        if not votes:
            other.append(item)
            continue
        winner = max(votes.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]
        by_group.setdefault(winner, []).append(item)
    groups = []
    for group_id, items in sorted(by_group.items(), key=lambda kv: repr(kv[0])):
        name = base.node(group_id).value("name", str(group_id))
        groups.append(
            Group(label=f"endorsed by your {name}", dimension="endorser",
                  items=items)
        )
    if other:
        groups.append(Group(label="endorsed by other travelers",
                            dimension="endorser", items=other))
    return GroupingResult(dimension="endorser", groups=groups)

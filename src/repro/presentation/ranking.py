"""The Result Selector: ranking within and across groups (paper §3/§7).

    "the latter [Result Selector] identifies appropriate mechanisms for
    ranking and selecting results within or across groups."

Within a group, items rank by their MSG combined score.  Across groups,
groups rank by mean member relevance (ties: size, label).  For flat
consumption, :func:`interleave` merges the per-group rankings round-robin
in group rank order — a simple fairness-preserving selection across
groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Id
from repro.discovery.msg import MeaningfulSocialGraph
from repro.presentation.grouping import Group, GroupingResult


@dataclass
class RankedGroup:
    """A group with its members ordered by relevance."""

    label: str
    dimension: str
    items: list[tuple[Id, float]] = field(default_factory=list)
    group_score: float = 0.0


class ResultSelector:
    """Ranks groups and their members from MSG scores."""

    def rank_within(self, group: Group, msg: MeaningfulSocialGraph) -> RankedGroup:
        """Order one group's items by combined score (desc, id tiebreak)."""
        scored = sorted(
            ((item, msg.score_of(item)) for item in group.items),
            key=lambda kv: (-kv[1], repr(kv[0])),
        )
        mean = sum(s for _, s in scored) / len(scored) if scored else 0.0
        return RankedGroup(
            label=group.label,
            dimension=group.dimension,
            items=scored,
            group_score=mean,
        )

    def rank_groups(
        self, grouping: GroupingResult, msg: MeaningfulSocialGraph
    ) -> list[RankedGroup]:
        """Rank all groups: by mean relevance, then size, then label."""
        ranked = [self.rank_within(group, msg) for group in grouping.groups]
        ranked.sort(key=lambda g: (-g.group_score, -len(g.items), g.label))
        return ranked

    def interleave(
        self, ranked_groups: list[RankedGroup], k: int
    ) -> list[tuple[Id, float]]:
        """Round-robin the ranked groups into one flat top-k list."""
        out: list[tuple[Id, float]] = []
        seen: set[Id] = set()
        position = 0
        while len(out) < k:
            advanced = False
            for group in ranked_groups:
                if position < len(group.items):
                    item, score = group.items[position]
                    if item not in seen:
                        out.append((item, score))
                        seen.add(item)
                        advanced = True
                        if len(out) >= k:
                            break
            if not advanced:
                break
            position += 1
        return out

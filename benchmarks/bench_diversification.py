"""Extension ablation — result diversification (paper reference [30]).

Quantifies what MMR and coverage diversification do to John's result list:
intra-list similarity (diversity metric) and mean relevance retained,
plus latency per method.
"""

from __future__ import annotations

import pytest

from repro.discovery import InformationDiscoverer
from repro.presentation import (
    coverage_diversify,
    intra_list_similarity,
    mmr_diversify,
)
from repro.workloads import JOHN

K = 8


@pytest.fixture(scope="module")
def msg(travel_site):
    # A narrow query: John's baseball results repeat cities, so there is
    # real redundancy for the diversifiers to remove.
    return InformationDiscoverer(travel_site.graph).discover(
        JOHN, "baseball", k=20
    )


def test_diversification_table(msg, travel_site, report, benchmark):
    graph = travel_site.graph
    plain = [(s.item_id, s.combined) for s in msg.items[:K]]
    mmr = benchmark.pedantic(mmr_diversify, args=(msg, K),
                             kwargs={"lam": 0.5}, rounds=1, iterations=1)
    coverage = coverage_diversify(msg, K, attribute="city")
    score_of = {s.item_id: s.combined for s in msg.items}

    def row(name, items):
        ids = [i for i, _ in items]
        ils = intra_list_similarity(ids, graph)
        relevance = sum(score_of.get(i, 0.0) for i in ids) / max(len(ids), 1)
        return f"  {name:<18}{ils:>18.3f}{relevance:>16.3f}"

    report(
        "",
        f"=== diversification of John's top-{K} (extension, ref [30]) ===",
        f"  {'method':<18}{'intra-list sim':>18}{'mean relevance':>16}",
        row("relevance only", plain),
        row("MMR λ=0.5", mmr),
        row("coverage:city", coverage),
    )
    ids_plain = [i for i, _ in plain]
    ids_mmr = [i for i, _ in mmr]
    assert intra_list_similarity(ids_mmr, graph) <= (
        intra_list_similarity(ids_plain, graph) + 1e-9
    )


def test_mmr_latency(msg, benchmark):
    benchmark(mmr_diversify, msg, K, 0.5)


def test_coverage_latency(msg, benchmark):
    benchmark(coverage_diversify, msg, K)

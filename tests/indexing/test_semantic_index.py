"""SemanticItemIndex: exact parity with the scan path, TA top-k, caching."""

from __future__ import annotations

import pytest

from repro.core import Condition, select_nodes
from repro.discovery import SemanticRelevance, parse_query
from repro.indexing import SemanticItemIndex
from repro.workloads import JOHN, TravelSiteConfig, build_travel_site

QUERIES = (
    "Denver attractions",
    "museum",
    "baseball stadium",
    "family trip barcelona",
    "history art",
    "nonexistentterm",
)


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture(scope="module")
def index(travel):
    return SemanticItemIndex(travel.graph)


class TestScanParity:
    @pytest.mark.parametrize("text", QUERIES)
    def test_candidates_equal_scan_scores_exactly(self, travel, index, text):
        """Same candidate set, bit-identical scores as σN⟨keywords, tf-idf⟩."""
        semantic = SemanticRelevance(travel.graph)
        query = parse_query(JOHN, text)
        scanned = semantic.candidates(query).scores
        indexed = index.candidates(query.keywords)
        assert indexed == scanned  # exact float equality, by construction

    @pytest.mark.parametrize("text", QUERIES)
    def test_score_matches_shared_scorer(self, travel, index, text):
        keywords = tuple(text.lower().split())
        for node in travel.graph.nodes_of_type("item"):
            assert index.score(node.id, keywords) == pytest.approx(
                index.scorer(node, keywords), abs=0.0
            )

    def test_variant_matching_included(self, travel, index):
        """'attraction' must scope to items mentioning 'attractions'."""
        singular = index.candidates(("attraction",))
        plural = index.candidates(("attractions",))
        assert set(singular) == set(plural)
        assert singular  # the travel site describes attractions


class TestTopK:
    @pytest.mark.parametrize("text", QUERIES[:5])
    @pytest.mark.parametrize("k", (1, 5, 20))
    def test_ta_topk_equals_sorted_candidates(self, index, text, k):
        keywords = tuple(text.lower().split())
        expected = sorted(
            index.candidates(keywords).items(),
            key=lambda kv: (-kv[1], repr(kv[0])),
        )[:k]
        results, stats = index.topk(keywords, k)
        assert [(i, pytest.approx(s)) for i, s in results] == \
               [(i, pytest.approx(s)) for i, s in expected]
        assert stats.sorted_accesses >= len(results)

    def test_topk_prunes_for_small_k(self, index):
        _, full_stats = index.topk(("denver", "attractions"), 10_000)
        _, small_stats = index.topk(("denver", "attractions"), 1)
        assert small_stats.sorted_accesses <= full_stats.sorted_accesses

    def test_empty_keywords_yield_nothing(self, index):
        results, _ = index.topk((), 5)
        assert results == []


class TestIndexMechanics:
    def test_term_lists_cached(self, index):
        first = index.term_list("denver")
        assert index.term_list("denver") is first

    def test_report_counts(self, travel, index):
        report = index.report()
        assert report.lists == len(index.postings)
        assert report.entries == sum(len(p) for p in index.postings.values())
        assert report.bytes == report.entries * 10

    def test_only_item_population_indexed(self, travel, index):
        user_ids = {n.id for n in travel.graph.nodes_of_type("user")}
        indexed = set(index.norms)
        assert not indexed & user_ids

    def test_scan_and_index_agree_under_shared_scorer(self, travel):
        """Scan via select_nodes with the index's scorer: same scores."""
        index = SemanticItemIndex(travel.graph)
        condition = Condition({"type": "item"}, keywords="denver baseball")
        selected = select_nodes(travel.graph, condition, scorer=index.scorer)
        scanned = {n.id: n.score for n in selected.nodes()}
        assert index.candidates(("denver", "baseball")) == scanned

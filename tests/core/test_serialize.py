"""Tests for graph serialization (JSON / JSON-lines round-trips)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.core import (
    Node,
    SocialContentGraph,
    dump_json,
    dump_jsonl,
    graph_from_dict,
    graph_to_dict,
    load_json,
    load_jsonl,
)
from repro.core.serialize import FORMAT_VERSION, dumps_strict, loads_strict
from repro.errors import GraphError
from tests.conftest import social_graphs


class TestDictCodec:
    def test_round_trip(self, tiny_travel_graph):
        payload = graph_to_dict(tiny_travel_graph)
        restored = graph_from_dict(payload)
        assert restored.same_as(tiny_travel_graph)

    def test_envelope(self, tiny_travel_graph):
        payload = graph_to_dict(tiny_travel_graph)
        assert payload["format"] == "socialscope-graph"
        assert payload["version"] == FORMAT_VERSION

    def test_reads_v1_documents(self, tiny_travel_graph):
        # v1 snapshots (no durability extras) must keep loading
        payload = graph_to_dict(tiny_travel_graph)
        payload["version"] = 1
        assert graph_from_dict(payload).same_as(tiny_travel_graph)

    def test_deterministic(self, tiny_travel_graph):
        a = json.dumps(graph_to_dict(tiny_travel_graph))
        b = json.dumps(graph_to_dict(tiny_travel_graph))
        assert a == b

    def test_rejects_wrong_format(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format": "not-a-graph", "version": 1})

    def test_rejects_wrong_version(self, tiny_travel_graph):
        payload = graph_to_dict(tiny_travel_graph)
        payload["version"] = 99
        with pytest.raises(GraphError):
            graph_from_dict(payload)

    def test_rejects_non_json_values(self):
        graph = SocialContentGraph()
        graph.add_node(Node(1, type="user"))
        # smuggle a non-JSON value past normalisation
        bad = graph.node(1).with_attrs(payload="x")
        object.__setattr__(bad, "attrs", {**bad.attrs, "payload": (object(),)})
        graph.replace_node(bad)
        with pytest.raises(GraphError):
            graph_to_dict(graph)

    @given(g=social_graphs())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, g):
        assert graph_from_dict(graph_to_dict(g)).same_as(g)


class TestNonFiniteFloats:
    """Python's json happily writes NaN/Infinity — invalid JSON that a
    recovering process (or any strict parser) then chokes on.  The codec
    must refuse non-finite floats at *write* time, never at recovery."""

    @pytest.mark.parametrize("bad", [
        float("nan"), float("inf"), float("-inf"),
    ])
    def test_attr_value_rejected_at_serialize(self, bad):
        graph = SocialContentGraph()
        graph.add_node(Node(1, type="item", weight=bad))
        with pytest.raises(GraphError, match="non-finite"):
            graph_to_dict(graph)

    @pytest.mark.parametrize("bad", [
        float("nan"), float("inf"), float("-inf"),
    ])
    def test_nested_value_rejected(self, bad):
        graph = SocialContentGraph()
        graph.add_node(Node(1, type="item", scores=[0.5, bad]))
        with pytest.raises(GraphError, match="non-finite"):
            graph_to_dict(graph)

    def test_dumps_strict_refuses_nan(self):
        with pytest.raises(GraphError, match="non-finite"):
            dumps_strict({"x": float("nan")})

    def test_loads_strict_refuses_nan_tokens(self):
        # a pre-fix process may have written these; reading must be loud,
        # not silently produce a NaN that poisons every ranking after it
        for text in ('{"x": NaN}', '{"x": Infinity}', '{"x": -Infinity}'):
            with pytest.raises(GraphError):
                loads_strict(text)

    def test_finite_floats_round_trip_exactly(self):
        graph = SocialContentGraph()
        graph.add_node(Node(1, type="item", w=0.1 + 0.2, tiny=5e-324))
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.node(1).attrs["w"] == (0.1 + 0.2,)
        assert restored.node(1).attrs["tiny"] == (5e-324,)


class TestFiles:
    def test_json_file_round_trip(self, tiny_travel_graph, tmp_path):
        path = tmp_path / "graph.json"
        dump_json(tiny_travel_graph, path)
        assert load_json(path).same_as(tiny_travel_graph)

    def test_jsonl_file_round_trip(self, tiny_travel_graph, tmp_path):
        path = tmp_path / "graph.jsonl"
        dump_jsonl(tiny_travel_graph, path)
        assert load_jsonl(path).same_as(tiny_travel_graph)

    def test_jsonl_has_one_record_per_element(self, tiny_travel_graph, tmp_path):
        path = tmp_path / "graph.jsonl"
        dump_jsonl(tiny_travel_graph, path)
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        expected = 1 + tiny_travel_graph.num_nodes + tiny_travel_graph.num_links
        assert len(lines) == expected

    def test_jsonl_blank_lines_skipped(self, tiny_travel_graph, tmp_path):
        path = tmp_path / "graph.jsonl"
        dump_jsonl(tiny_travel_graph, path)
        padded = tmp_path / "padded.jsonl"
        padded.write_text("\n" + path.read_text() + "\n\n")
        assert load_jsonl(padded).same_as(tiny_travel_graph)

    def test_jsonl_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(GraphError):
            load_jsonl(path)

    def test_workload_round_trip(self, tmp_path):
        from repro.workloads import TravelSiteConfig, build_travel_site

        site = build_travel_site(TravelSiteConfig(
            num_cities=3, attractions_per_city=4, num_background_users=20,
            seed=5,
        ))
        path = tmp_path / "travel.jsonl"
        dump_jsonl(site.graph, path)
        assert load_jsonl(path).same_as(site.graph)

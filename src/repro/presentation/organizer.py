"""The Information Organizer: MSG → result page (paper §3, §7).

    "It admits as input the MSG from the Information Discovery layer and
    dynamically organizes the results for effective exploration by the
    user.  There are two key primitives: grouping and ranking, managed by
    Information Organizer and Result Selector, respectively."

:class:`InformationOrganizer` builds the candidate groupings (social,
topical, structural facets, endorser-group), picks the most meaningful one
(§7.1), ranks groups and members (Result Selector), and attaches §7.2
explanations — yielding a :class:`ResultPage`, the library's end-user-facing
answer object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Id, SocialContentGraph
from repro.discovery.msg import MeaningfulSocialGraph
from repro.errors import PresentationError
from repro.presentation.explanations import (
    COLLABORATIVE,
    Explanation,
    GroupExplanation,
    explain_collaborative,
    explain_content_based,
    explain_group,
)
from repro.presentation.grouping import (
    GroupingResult,
    endorser_group_grouping,
    social_grouping,
    structural_grouping,
    topical_grouping,
)
from repro.presentation.hierarchy import GroupingFactory, HierarchicalPresenter
from repro.presentation.meaningful import MeaningfulnessWeights, choose_grouping
from repro.presentation.ranking import RankedGroup, ResultSelector


@dataclass
class ResultEntry:
    """One displayed result."""

    item_id: Id
    name: str
    score: float
    explanation: Explanation


@dataclass
class ResultGroup:
    """One displayed group with ranked entries and a group explanation."""

    label: str
    dimension: str
    entries: list[ResultEntry] = field(default_factory=list)
    group_score: float = 0.0
    explanation: GroupExplanation | None = None


@dataclass
class ResultPage:
    """The organized answer to one query."""

    query_text: str
    user_id: Id
    groups: list[ResultGroup] = field(default_factory=list)
    chosen_dimension: str = ""
    dimension_scores: dict[str, float] = field(default_factory=dict)
    flat: list[ResultEntry] = field(default_factory=list)
    used_expert_fallback: bool = False

    @property
    def all_items(self) -> list[Id]:
        """Every displayed item id, across groups."""
        return [e.item_id for g in self.groups for e in g.entries]


@dataclass
class OrganizerConfig:
    """Knobs for page assembly."""

    structural_facets: tuple[str, ...] = ("city", "category")
    social_theta: float = 0.3
    weights: MeaningfulnessWeights = field(default_factory=MeaningfulnessWeights)
    explanation_kind: str = COLLABORATIVE
    flat_k: int = 10


class InformationOrganizer:
    """Builds result pages (and zoomable hierarchies) from MSGs."""

    def __init__(
        self,
        base_graph: SocialContentGraph,
        config: OrganizerConfig | None = None,
    ):
        self.base_graph = base_graph
        self.config = config or OrganizerConfig()
        self.selector = ResultSelector()

    # ---------------------------------------------------------------- groups
    def grouping_factories(self) -> dict[str, GroupingFactory]:
        """All grouping dimensions available on this site."""
        factories: dict[str, GroupingFactory] = {
            "social": lambda msg: social_grouping(msg, self.config.social_theta),
            "topical": topical_grouping,
            "endorser": lambda msg: endorser_group_grouping(msg, self.base_graph),
        }
        for facet in self.config.structural_facets:
            factories[f"structural:{facet}"] = (
                lambda msg, f=facet: structural_grouping(msg, f)
            )
        return factories

    def candidate_groupings(
        self, msg: MeaningfulSocialGraph
    ) -> list[GroupingResult]:
        """Evaluate every dimension on the MSG."""
        return [f(msg) for _, f in sorted(self.grouping_factories().items())]

    # ------------------------------------------------------------------ page
    def organize(
        self,
        msg: MeaningfulSocialGraph,
        dimension: str | None = None,
        flat_k: int | None = None,
    ) -> ResultPage:
        """Assemble the full result page for an MSG.

        Request-aware entry point: *dimension* forces one grouping
        dimension instead of the §7.1 meaningfulness choice, and *flat_k*
        overrides the configured flat-list length for this page only.
        """
        factory = None
        if dimension is not None:
            # Validate before the empty-result early return: a typo'd
            # dimension must fail loudly even when no items matched.
            factory = self.grouping_factories().get(dimension)
            if factory is None:
                raise PresentationError(
                    f"unknown grouping dimension {dimension!r}; have "
                    f"{sorted(self.grouping_factories())}"
                )
        page = ResultPage(
            query_text=msg.query.raw_text,
            user_id=msg.query.user_id,
            used_expert_fallback=msg.used_expert_fallback,
        )
        if not msg.items:
            return page
        if factory is not None:
            winner = factory(msg)
            scores = {dimension: 1.0}
        else:
            candidates = self.candidate_groupings(msg)
            winner, scores = choose_grouping(
                candidates, msg, self.config.weights
            )
        page.chosen_dimension = winner.dimension
        page.dimension_scores = scores

        ranked_groups = self.selector.rank_groups(winner, msg)
        for ranked in ranked_groups:
            page.groups.append(self._render_group(ranked, msg))
        # The flat list is the classic single ranked list (global combined
        # score order); interleaved across-group selection remains available
        # via ResultSelector.interleave for diversity-first surfaces.
        all_entries = [e for g in page.groups for e in g.entries]
        all_entries.sort(key=lambda e: (-e.score, repr(e.item_id)))
        limit = self.config.flat_k if flat_k is None else flat_k
        page.flat = all_entries[:limit]
        return page

    def _render_group(
        self, ranked: RankedGroup, msg: MeaningfulSocialGraph
    ) -> ResultGroup:
        entries = []
        for item, score in ranked.items:
            entries.append(
                ResultEntry(
                    item_id=item,
                    name=str(self.base_graph.node(item).value("name", item))
                    if self.base_graph.has_node(item)
                    else str(item),
                    score=score,
                    explanation=self._explain(msg, item),
                )
            )
        group_explanation = explain_group(
            self.base_graph,
            msg.query.user_id,
            ranked.label,
            [i for i, _ in ranked.items],
            kind=self.config.explanation_kind,
        )
        return ResultGroup(
            label=ranked.label,
            dimension=ranked.dimension,
            entries=entries,
            group_score=ranked.group_score,
            explanation=group_explanation,
        )

    def _explain(self, msg: MeaningfulSocialGraph, item: Id) -> Explanation:
        if self.config.explanation_kind == COLLABORATIVE:
            return explain_collaborative(
                self.base_graph, msg.query.user_id, item, friends_only=True
            )
        return explain_content_based(self.base_graph, msg.query.user_id, item)

    # ------------------------------------------------------------- hierarchy
    def hierarchy(self, msg: MeaningfulSocialGraph) -> HierarchicalPresenter:
        """A zoomable presenter over the MSG (§7.1's hierarchical option)."""
        return HierarchicalPresenter(
            msg, self.grouping_factories(), self.config.weights
        )

"""Activity-driven data management: §6.2's network-aware search indexes.

Network-aware scores (f=count, g=sum), per-(tag,user) inverted lists,
cluster-compressed lists with Eq 1 upper bounds, the three clustering
strategies of Definitions 11-13, Fagin-style top-k, and the index sizing
model behind the paper's 1 TB estimate.
"""

from repro.indexing.clustered import ClusteredIndex
from repro.indexing.endorsement import (
    ACT_TAG,
    EndorsementData,
    clustered_endorsement_index,
    endorsement_entries,
    exact_endorsement_index,
)
from repro.indexing.clustering import (
    Clustering,
    STRATEGIES,
    behavior_clustering,
    exact_clustering,
    hybrid_clustering,
    network_clustering,
)
from repro.indexing.inverted import (
    ENTRY_BYTES,
    ExactUserIndex,
    GlobalPopularityIndex,
    IndexReport,
)
from repro.indexing.scores import TaggingData, f_count, g_sum
from repro.indexing.semantic import SemanticItemIndex
from repro.indexing.sizing import (
    MeasuredSizes,
    SizingEstimate,
    SizingScenario,
    measured_report,
    paper_scale_estimate,
)
from repro.indexing.topk import (
    QueryStats,
    brute_force,
    no_random_access,
    threshold_algorithm,
)

__all__ = [
    "TaggingData", "f_count", "g_sum",
    "ExactUserIndex", "GlobalPopularityIndex", "IndexReport", "ENTRY_BYTES",
    "Clustering", "network_clustering", "behavior_clustering",
    "hybrid_clustering", "exact_clustering", "STRATEGIES",
    "ClusteredIndex",
    "ACT_TAG", "EndorsementData", "exact_endorsement_index",
    "clustered_endorsement_index", "endorsement_entries",
    "SemanticItemIndex",
    "threshold_algorithm", "no_random_access", "brute_force", "QueryStats",
    "SizingScenario", "SizingEstimate", "paper_scale_estimate",
    "MeasuredSizes", "measured_report",
]

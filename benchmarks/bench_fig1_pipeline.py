"""Experiment F1 — Figure 1: the three-layer architecture end to end.

Times the full pipeline (query parsing -> semantic + social relevance ->
MSG -> grouping/ranking/explanations) for the paper's three personas, and
prints a compact trace showing each layer's contribution.
"""

from __future__ import annotations

import pytest

from repro import SocialScope
from repro.workloads import ALEXIA, JOHN, SELMA


@pytest.fixture(scope="module")
def scope(travel_site):
    return SocialScope.from_graph(travel_site.graph)


PERSONA_QUERIES = {
    "john": (JOHN, "Denver attractions"),
    "selma": (SELMA, "Barcelona family trip with babies"),
    "alexia": (ALEXIA, "history"),
}


def test_pipeline_trace(scope, travel_site, report, benchmark):
    benchmark.pedantic(scope.search, args=(JOHN, "Denver attractions"),
                       rounds=1, iterations=1)
    lines = ["", "=== Figure 1 pipeline trace (three personas) ==="]
    for name, (user, query) in PERSONA_QUERIES.items():
        msg = scope.discover(user, query)
        page = scope.organizer.organize(msg)
        top = page.flat[0].name if page.flat else "(none)"
        lines.append(
            f"  {name:<7} q={query!r:<38} msg: {msg.graph.num_nodes}n/"
            f"{msg.graph.num_links}l, {len(msg.items)} items -> "
            f"dim={page.chosen_dimension}, {len(page.groups)} groups, "
            f"top={top!r}"
        )
        assert page.flat, f"{name} must get results"
    report(*lines)


@pytest.mark.parametrize("persona", list(PERSONA_QUERIES), ids=list(PERSONA_QUERIES))
def test_end_to_end_latency(scope, benchmark, persona):
    user, query = PERSONA_QUERIES[persona]
    benchmark(scope.search, user, query)


def test_discovery_only_latency(scope, benchmark):
    user, query = PERSONA_QUERIES["john"]
    benchmark(scope.discover, user, query)


def test_presentation_only_latency(scope, benchmark):
    user, query = PERSONA_QUERIES["john"]
    msg = scope.discover(user, query)
    benchmark(scope.organizer.organize, msg)

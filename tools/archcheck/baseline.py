"""Baseline suppressions: grandfathered findings that must ratchet down.

``baseline.json`` is a list of entries, each carrying a finding
fingerprint (see :meth:`Finding.fingerprint` — deliberately line-free)
and a one-line reason.  Matching findings are suppressed from the
report; entries whose fingerprint no longer matches anything are *stale*
and reported as errors themselves, so the file can only shrink unless a
human adds a new justified entry in review.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from tools.archcheck.findings import Finding


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    reason: str


def load_baseline(path: Path) -> list[BaselineEntry]:
    if not path.is_file():
        return []
    raw = json.loads(path.read_text(encoding="utf-8"))
    entries: list[BaselineEntry] = []
    for item in raw.get("suppressions", []):
        if not item.get("reason", "").strip():
            raise ValueError(
                f"baseline entry {item.get('fingerprint')!r} has no reason; "
                f"every suppression must say why it is acceptable"
            )
        entries.append(BaselineEntry(
            fingerprint=item["fingerprint"],
            reason=item["reason"],
        ))
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Split findings into (active, suppressed) and surface stale entries.

    Returns ``(active, suppressed, stale)``: active findings fail the
    run, suppressed ones are reported informationally, stale baseline
    entries (matching nothing) fail the run too — they mean the debt was
    paid and the entry must be deleted.
    """
    by_fingerprint: dict[str, list[Finding]] = {}
    for finding in findings:
        by_fingerprint.setdefault(finding.fingerprint(), []).append(finding)
    known = {entry.fingerprint for entry in entries}
    active = [
        finding for finding in findings
        if finding.fingerprint() not in known
    ]
    suppressed = [
        finding for finding in findings
        if finding.fingerprint() in known
    ]
    stale = [
        entry for entry in entries
        if entry.fingerprint not in by_fingerprint
    ]
    return active, suppressed, stale

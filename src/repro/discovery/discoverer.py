"""The Information Discoverer (paper §3): query → Meaningful Social Graph.

    "The Information Discoverer parses the user query, constructs its
    internal representations (based on various semantic and social
    relevance computations), and evaluates them on the social content
    graph."

Pipeline per query:

1. parse (:mod:`repro.discovery.query`) and classify
   (:mod:`repro.discovery.classify`) the text;
2. semantic relevance: scope + score candidates — built as a σN⟨C,S⟩
   algebra plan and executed through the physical compiler
   (:mod:`repro.plan`), which picks the access path (index vs. scan)
   cost-wise and caches the compiled plan;
3. connection selection: pick the friend subset fit for the query, falling
   back to topic experts (Example 2);
4. social relevance: run the configured strategy (friend endorsements by
   default; Example 5 CF and item-based CF available);
5. combine into one relevance score — ``α·semantic + (1-α)·social`` over
   max-normalised components; empty queries use social only (§4);
6. assemble the MSG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Id, SocialContentGraph
from repro.discovery.classify import QueryClassifier
from repro.discovery.connections import ConnectionSelector
from repro.discovery.msg import MeaningfulSocialGraph, ScoredItem, assemble_msg
from repro.discovery.query import Query, parse_query
from repro.discovery.relevance import SemanticRelevance, SemanticResult
from repro.discovery.strategies import (
    DEFAULT_STRATEGIES,
    FriendBasedStrategy,
    SocialScores,
    SocialStrategy,
)
from repro.errors import DiscoveryError
from repro.plan import PlanExecution, QueryPlanner


@dataclass
class DiscoveryConfig:
    """Tunables for the discovery pipeline."""

    #: semantic weight α in the combined score (1-α is social)
    alpha: float = 0.5
    #: how many results an MSG carries
    max_results: int = 20
    #: social strategy name from the registry
    strategy: str = "friends"
    #: drop items with a combined score of zero
    drop_zero: bool = True


@dataclass
class RankedDiscovery:
    """One query's *full* combined ranking, before any window is cut.

    The items list is totally ordered (score desc, item-id repr asc), so
    any ``[offset : offset+limit]`` window is deterministic — the property
    the session API's pagination rests on.
    """

    query: Query
    items: list[ScoredItem]
    social: SocialScores
    used_expert_fallback: bool

    @property
    def total(self) -> int:
        """Number of ranked (non-dropped) items."""
        return len(self.items)


class InformationDiscoverer:
    """Evaluates queries into Meaningful Social Graphs."""

    def __init__(
        self,
        graph: SocialContentGraph,
        config: DiscoveryConfig | None = None,
        strategies: dict[str, SocialStrategy] | None = None,
        item_type: str = "item",
    ):
        self.graph = graph
        self.config = config or DiscoveryConfig()
        self.strategies = dict(strategies or DEFAULT_STRATEGIES)
        self.classifier = QueryClassifier()
        self.semantic = SemanticRelevance(graph, item_type=item_type)
        self.connections = ConnectionSelector(graph)
        #: compiles every query's scoping plan; sessions attach their
        #: semantic index here so the cost model can choose it
        self.planner = QueryPlanner(graph)

    def refresh(self, graph: SocialContentGraph) -> None:
        """Point the pipeline at a (possibly new) graph in place.

        The incremental alternative to reconstructing the discoverer:
        stateless helpers are retargeted, the semantic layer's cached
        corpus state is invalidated rather than eagerly rebuilt, and the
        planner bumps its generation (stale compiled plans die on lookup).
        """
        self.graph = graph
        self.semantic.invalidate(graph)
        self.connections.graph = graph
        self.planner.refresh(graph)

    def strategy(self, name: str | None = None) -> SocialStrategy:
        """Resolve a strategy by name (configured default when None)."""
        key = name or self.config.strategy
        strategy = self.strategies.get(key)
        if strategy is None:
            raise DiscoveryError(
                f"unknown social strategy {key!r}; have {sorted(self.strategies)}"
            )
        return strategy

    # ------------------------------------------------------------------ main
    def discover(
        self,
        user_id: Id,
        text: str = "",
        structural=None,
        strategy: str | None = None,
        k: int | None = None,
    ) -> MeaningfulSocialGraph:
        """Run the full pipeline for one query."""
        query = parse_query(user_id, text, structural)
        return self.discover_query(query, strategy=strategy, k=k)

    def discover_query(
        self,
        query: Query,
        strategy: str | None = None,
        k: int | None = None,
        alpha: float | None = None,
        semantic: SemanticResult | None = None,
        offset: int = 0,
    ) -> MeaningfulSocialGraph:
        """Evaluate an already-parsed query into a (windowed) MSG.

        Request-aware entry point: *strategy*/*alpha* override the config
        per call, *semantic* injects a precomputed candidate score map
        (e.g. from an index-backed stage), and *offset* cuts a later
        pagination window out of the full ranking.
        """
        limit = k if k is not None else self.config.max_results
        ranking = self.rank(
            query, strategy=strategy, alpha=alpha, semantic=semantic
        )
        window = ranking.items[offset : offset + limit]
        return assemble_msg(
            self.graph, query, window, ranking.social,
            ranking.used_expert_fallback,
        )

    def semantic_candidates(
        self, query: Query, access: str = "auto"
    ) -> PlanExecution:
        """Execute the query's σN scoping plan through the compiler.

        *access* constrains the physical choice (``"auto"``/``"index"``/
        ``"scan"``); eligibility — keyword-only scope over the indexed
        population, shared scorer — is enforced by the compiler, so a
        forced ``"index"`` on an ineligible query still scans.
        """
        scorer = self.semantic.scorer if query.keywords else None
        return self.planner.semantic_candidates(
            query,
            item_type=self.semantic.item_type,
            scorer=scorer,
            access=access,
        )

    def rank(
        self,
        query: Query,
        strategy: str | None = None,
        alpha: float | None = None,
        semantic: SemanticResult | None = None,
    ) -> RankedDiscovery:
        """Compute the full combined ranking for an already-parsed query.

        The semantic stage runs as a compiled physical plan unless the
        caller injects a precomputed *semantic* score map (the session
        does, to thread one execution's EXPLAIN profile through).  Per-item
        combined scores are independent of any result limit (normalisation
        runs over the full candidate set), so callers may window the
        returned list freely without reordering artifacts.
        """
        semantic_result = (
            semantic
            if semantic is not None
            else SemanticResult(scores=self.semantic_candidates(query).scores())
        )
        candidates = set(semantic_result.scores)

        selection = self.connections.select(query.user_id, query.keywords)
        chosen = self.strategy(strategy)
        social = chosen.score(self.graph, query.user_id, candidates, selection)
        # Selma fallback: if the friend basis produced nothing (or experts
        # were already chosen), friend strategies rerun over experts.
        if (
            not social.scores
            and isinstance(chosen, FriendBasedStrategy)
            and not selection.used_expert_fallback
        ):
            from repro.discovery.connections import find_experts

            selection.used_expert_fallback = True
            selection.experts = find_experts(
                self.graph, set(query.keywords), exclude={query.user_id}
            )
            social = chosen.score(
                self.graph, query.user_id, candidates, selection
            )

        semantic_norm = semantic_result.normalized()
        social_norm = social.normalized()
        if query.is_empty:
            weight = 0.0
        else:
            weight = self.config.alpha if alpha is None else alpha

        combined: list[ScoredItem] = []
        for item in candidates:
            sem = semantic_norm.get(item, 0.0)
            soc = social_norm.get(item, 0.0)
            score = weight * sem + (1 - weight) * soc
            if self.config.drop_zero and score <= 0.0:
                continue
            combined.append(
                ScoredItem(item_id=item, semantic=sem, social=soc, combined=score)
            )
        combined.sort(key=lambda s: (-s.combined, repr(s.item_id)))
        return RankedDiscovery(
            query=query,
            items=combined,
            social=social,
            used_expert_fallback=selection.used_expert_fallback,
        )

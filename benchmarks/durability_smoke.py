#!/usr/bin/env python
"""Durability smoke: snapshot, kill -9, recover in a fresh interpreter.

The one end-to-end durability claim no in-process test can make: a site
checkpointed by one OS process — then killed without any clean shutdown,
mid-append, with a torn frame on the end of its WAL — is recovered by a
*different* interpreter and immediately serves through the asyncio
gateway at learned cost.

Three phases, two processes:

1. ``--phase seed <dir>`` (subprocess #1): builds a durable site, serves
   representative traffic, checkpoints through the gateway's drain path
   (``Session.save``), writes post-checkpoint activity that reaches only
   the WAL, appends a deliberately torn frame, and dies via
   ``os._exit`` — no atexit hooks, no flush, no goodbye.
2. ``--phase recover <dir>`` (subprocess #2, fresh interpreter): restores
   the site and serves the same traffic through ``ServeGateway``,
   asserting the WAL-tail write is visible, the torn tail was truncated,
   the epoch/boot counters moved forward, and the first request hit the
   warmed plan cache with zero compiles.
3. no flag (orchestrator): runs both in order and reports.

Exit status 0 only when every phase-2 assertion holds.  CI runs this as
the ``durability-smoke`` job; locally: ``python benchmarks/durability_smoke.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

PROBE_TEXT = "music"
LATE_ITEM = "item-post-checkpoint"


def _session_bits():
    from repro.api import SearchRequest, Session
    from repro.management import DataManager
    from repro.workloads import WorkloadConfig, build_site

    return SearchRequest, Session, DataManager, WorkloadConfig, build_site


def _probe_requests(SearchRequest):
    return [
        SearchRequest(user_id=uid, text=PROBE_TEXT, strategy=strategy,
                      page_size=10)
        for uid in (1, 2, 3)
        for strategy in ("friends", "similar_users", "item_based")
    ]


def _open_gateway(session):
    from repro.serve import (
        AdmissionPolicy,
        GatewayConfig,
        ServeGateway,
        TenantPolicy,
    )

    policy = AdmissionPolicy(
        default=TenantPolicy(capacity=1e9, refill_per_s=1e9)
    )
    return ServeGateway(session, GatewayConfig(admission=policy))


def phase_seed(site: Path) -> None:
    SearchRequest, Session, DataManager, WorkloadConfig, build_site = (
        _session_bits()
    )
    from repro.core import Link, Node
    from repro.management.wal import list_segments

    dm = DataManager(shards=4)
    dm.load_graph(
        build_site(WorkloadConfig(num_users=30, num_items=60, seed=7)).graph
    )
    dm.enable_wal(site / "wal")
    session = Session(dm)
    requests = _probe_requests(SearchRequest)

    async def serve_and_checkpoint():
        async with _open_gateway(session) as gateway:
            served = await asyncio.gather(*[
                gateway.submit("smoke", r) for r in requests
            ])
            manifest = await gateway.checkpoint(site)
            return served, manifest

    served, manifest = asyncio.run(serve_and_checkpoint())
    assert all(r.ok for r in served), "seed phase failed to serve"
    assert manifest["extra"]["session"]["warm_recipes"], "no warm recipes"

    # expected rankings for phase 2, written *before* the WAL-only tail
    expectations = {
        "pre_tail_items": [list(session.run(r).items) for r in requests],
        "epoch": session.epoch,
        "boot": session.boot,
    }

    # post-checkpoint activity: reaches the WAL, never any snapshot
    dm.add_node(Node(LATE_ITEM, type="item", name="late arrival",
                     keywords=f"{PROBE_TEXT} late"))
    dm.add_link(Link("act-late", 1, LATE_ITEM, type="act, visit"))
    dm.wal.sync()
    expectations["post_tail_items"] = [
        list(session.run(r).items) for r in requests
    ]
    (site / "expected.json").write_text(json.dumps(expectations))

    # the crash: a torn half-frame on the live segment, then SIGKILL
    # semantics — straight to the OS, no interpreter cleanup of any kind
    with open(list_segments(site / "wal")[-1], "a") as handle:
        handle.write('deadbeef {"seq": 424242, "op": "nod')
    sys.stdout.write("seed: checkpoint + torn tail written, dying\n")
    sys.stdout.flush()
    os._exit(0)


def phase_recover(site: Path) -> None:
    SearchRequest, Session, *_ = _session_bits()

    expected = json.loads((site / "expected.json").read_text())
    session = Session.restore(site)
    requests = _probe_requests(SearchRequest)

    # restart-correctness: counters moved forward, never back
    assert session.epoch >= expected["epoch"], "epoch went backwards"
    assert session.boot == expected["boot"] + 1, "boot did not advance"

    # warm restart: the very first request is served at learned cost
    first = session.run(requests[0])
    assert first.ok
    assert session.stats.plan_cache_hits >= 1, "cold plan cache after warm restore"
    assert session.stats.plan_compiles == 0, "first request compiled"
    assert list(first.items) == expected["post_tail_items"][0], (
        "WAL tail lost: first ranking diverged"
    )

    async def serve():
        async with _open_gateway(session) as gateway:
            return await asyncio.gather(*[
                gateway.submit("smoke", r) for r in requests
            ])

    served = asyncio.run(serve())
    for response, items in zip(served, expected["post_tail_items"]):
        assert response.ok
        assert list(response.items) == items, "recovered ranking diverged"
    visible = session.run(
        SearchRequest(user_id=1, text=PROBE_TEXT, page_size=50)
    ).items
    assert LATE_ITEM in visible, "post-checkpoint WAL write not recovered"
    print(f"recover: {len(served)} requests served identically, "
          f"WAL tail visible, boot {expected['boot']} -> {session.boot}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--phase", choices=("seed", "recover"))
    parser.add_argument("site", nargs="?", type=Path)
    args = parser.parse_args(argv)

    if args.phase:
        if args.site is None:
            parser.error("--phase requires a site directory")
        {"seed": phase_seed, "recover": phase_recover}[args.phase](args.site)
        return 0

    with tempfile.TemporaryDirectory(prefix="durability-smoke-") as tmp:
        for phase in ("seed", "recover"):
            proc = subprocess.run(
                [sys.executable, __file__, "--phase", phase, tmp],
                env=os.environ.copy(),
            )
            if proc.returncode != 0:
                print(f"durability smoke: {phase} phase FAILED "
                      f"(exit {proc.returncode})")
                return 1
    print("durability smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

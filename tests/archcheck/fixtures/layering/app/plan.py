"""Fixture: a legal downward import plus one into an undeclared package.

Expected findings: L003 for ``app.mystery`` (no layer declared); the
``app.core`` import is the allowed edge and must NOT be reported.
"""

import app.mystery
from app.core import base


def lower():
    return base, app.mystery

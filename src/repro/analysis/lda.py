"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

The Content Analyzer "derives new nodes (e.g., topics) ... through various
analyses (e.g., Latent Dirichlet Allocation [8])" — reference 8 being Blei,
Ng & Jordan 2003.  This is a from-scratch collapsed Gibbs sampler
(Griffiths & Steyvers-style) over bag-of-words documents, implemented with
numpy count matrices and a per-token sampling loop.  It is deliberately
simple and deterministic (seeded), sized for the corpora the synthetic
workloads produce (10^2-10^4 documents).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class LdaModel:
    """A fitted LDA model.

    Attributes
    ----------
    vocab:
        Term list; column order of :attr:`topic_word`.
    doc_topic:
        ``(n_docs, n_topics)`` matrix θ, rows sum to 1.
    topic_word:
        ``(n_topics, n_vocab)`` matrix φ, rows sum to 1.
    """

    vocab: list[str]
    doc_topic: np.ndarray
    topic_word: np.ndarray
    n_iterations: int
    log_likelihoods: list[float] = field(default_factory=list)

    @property
    def n_topics(self) -> int:
        """Number of topics K."""
        return self.topic_word.shape[0]

    def top_words(self, topic: int, k: int = 10) -> list[str]:
        """The *k* highest-probability terms of *topic*."""
        order = np.argsort(self.topic_word[topic])[::-1][:k]
        return [self.vocab[i] for i in order]

    def dominant_topic(self, doc_index: int) -> int:
        """The argmax topic of a document."""
        return int(np.argmax(self.doc_topic[doc_index]))

    def doc_topics_above(self, doc_index: int, threshold: float) -> list[tuple[int, float]]:
        """(topic, probability) pairs with probability ≥ *threshold*."""
        row = self.doc_topic[doc_index]
        return [(int(t), float(p)) for t, p in enumerate(row) if p >= threshold]


def fit_lda(
    documents: Sequence[Sequence[str]],
    n_topics: int = 8,
    alpha: float | None = None,
    beta: float = 0.01,
    n_iterations: int = 150,
    seed: int = 0,
    track_likelihood: bool = False,
) -> LdaModel:
    """Fit LDA by collapsed Gibbs sampling.

    Parameters
    ----------
    documents:
        Token lists; empty documents are allowed (their θ row is uniform).
    alpha:
        Symmetric Dirichlet prior on θ; defaults to ``50 / n_topics`` (the
        Griffiths-Steyvers heuristic).
    beta:
        Symmetric Dirichlet prior on φ.
    track_likelihood:
        When True, records the corpus log joint every 10 sweeps (useful for
        convergence tests).
    """
    if n_topics < 1:
        raise ValueError("n_topics must be >= 1")
    rng = np.random.default_rng(seed)
    if alpha is None:
        alpha = 50.0 / n_topics

    vocab: list[str] = []
    term_index: dict[str, int] = {}
    doc_tokens: list[np.ndarray] = []
    for doc in documents:
        ids = []
        for term in doc:
            idx = term_index.get(term)
            if idx is None:
                idx = len(vocab)
                term_index[term] = idx
                vocab.append(term)
            ids.append(idx)
        doc_tokens.append(np.asarray(ids, dtype=np.int64))

    n_docs = len(doc_tokens)
    n_vocab = max(len(vocab), 1)

    # Count matrices.
    ndk = np.zeros((n_docs, n_topics), dtype=np.int64)   # doc-topic
    nkw = np.zeros((n_topics, n_vocab), dtype=np.int64)  # topic-word
    nk = np.zeros(n_topics, dtype=np.int64)              # topic totals
    assignments: list[np.ndarray] = []

    for d, tokens in enumerate(doc_tokens):
        z = rng.integers(0, n_topics, size=len(tokens))
        assignments.append(z)
        for w, topic in zip(tokens, z):
            ndk[d, topic] += 1
            nkw[topic, w] += 1
            nk[topic] += 1

    beta_sum = beta * n_vocab
    log_likelihoods: list[float] = []

    for sweep in range(n_iterations):
        for d, tokens in enumerate(doc_tokens):
            z = assignments[d]
            for i in range(len(tokens)):
                w, old = tokens[i], z[i]
                ndk[d, old] -= 1
                nkw[old, w] -= 1
                nk[old] -= 1
                # Full conditional p(z=k | rest).
                probs = (ndk[d] + alpha) * (nkw[:, w] + beta) / (nk + beta_sum)
                probs_sum = probs.sum()
                new = int(rng.choice(n_topics, p=probs / probs_sum))
                z[i] = new
                ndk[d, new] += 1
                nkw[new, w] += 1
                nk[new] += 1
        if track_likelihood and sweep % 10 == 0:
            log_likelihoods.append(_log_joint(ndk, nkw, nk, alpha, beta))

    doc_lengths = ndk.sum(axis=1, keepdims=True)
    theta = (ndk + alpha) / (doc_lengths + alpha * n_topics)
    phi = (nkw + beta) / (nk[:, None] + beta_sum)
    return LdaModel(
        vocab=vocab,
        doc_topic=theta,
        topic_word=phi,
        n_iterations=n_iterations,
        log_likelihoods=log_likelihoods,
    )


def _log_joint(
    ndk: np.ndarray, nkw: np.ndarray, nk: np.ndarray, alpha: float, beta: float
) -> float:
    """Unnormalised log joint of the collapsed state (for convergence)."""
    from scipy.special import gammaln  # scipy is an allowed dependency

    n_topics, n_vocab = nkw.shape
    ll = 0.0
    # p(w | z)
    ll += n_topics * (gammaln(n_vocab * beta) - n_vocab * gammaln(beta))
    ll += gammaln(nkw + beta).sum() - gammaln(nk + n_vocab * beta).sum()
    # p(z)
    n_docs = ndk.shape[0]
    nd = ndk.sum(axis=1)
    ll += n_docs * (gammaln(n_topics * alpha) - n_topics * gammaln(alpha))
    ll += gammaln(ndk + alpha).sum() - gammaln(nd + n_topics * alpha).sum()
    return float(ll)

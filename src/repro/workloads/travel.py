"""A Yahoo!-Travel-like workload with the paper's three personas.

Section 2 of the paper motivates SocialScope with three hypothetical users:

* **John** (Example 1) — in Denver for a conference, past visits to baseball
  fields, many baseball-fan friends; "Denver attractions" should surface
  baseball venues via social relevance.
* **Selma** (Example 2) — young musician with two babies planning a family
  trip to Barcelona; her musician friends are useless for this query, but a
  small set of parent friends made family trips before.
* **Alexia** (Example 3) — high-school student researching "American
  history"; results span the country and are endorsed by two distinct
  groups (history classmates vs. soccer teammates), motivating grouping.

This module builds a deterministic travel graph embedding those personas in
a realistic population: cities with contained attractions, categories,
friendships, group memberships and visit/tag/rate activities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import Link, Node, SocialContentGraph

#: Gazetteer of cities (doubles as the location lexicon for the Table 1
#: query classifier).
CITIES = (
    "Denver", "Barcelona", "Paris", "London", "Boston", "Chicago",
    "Seattle", "Austin", "Philadelphia", "Washington", "Orlando",
    "San Francisco", "New York", "Miami", "Portland", "Nashville",
)

#: Attraction categories with the noun used in generated names.
CATEGORIES: dict[str, str] = {
    "baseball": "Ballpark",
    "museum": "Museum",
    "family": "Family Park",
    "music": "Concert Hall",
    "history": "Historic Site",
    "food": "Food Market",
    "outdoors": "Nature Trail",
    "art": "Art Gallery",
}

JOHN = 9001
SELMA = 9002
ALEXIA = 9003


@dataclass
class TravelSiteConfig:
    """Size and shape of the synthetic Y!Travel site."""

    num_cities: int = 12
    attractions_per_city: int = 8
    num_background_users: int = 120
    friends_per_user: int = 6
    visits_per_user: int = 8
    tag_prob: float = 0.5
    seed: int = 42


@dataclass
class TravelSite:
    """The built site: graph + registries the examples and benches need."""

    graph: SocialContentGraph
    personas: dict[str, int] = field(default_factory=dict)
    cities: list[str] = field(default_factory=list)
    attraction_ids: list[str] = field(default_factory=list)
    attractions_by_city: dict[str, list[str]] = field(default_factory=dict)
    attractions_by_category: dict[str, list[str]] = field(default_factory=dict)


def _add_city(graph: SocialContentGraph, city: str) -> str:
    city_id = f"city:{city.lower().replace(' ', '-')}"
    graph.add_node(
        Node(city_id, type="item, city", name=city,
             keywords=f"{city} city travel destination")
    )
    return city_id


def _add_attraction(
    graph: SocialContentGraph, city: str, city_id: str, category: str, index: int
) -> str:
    noun = CATEGORIES[category]
    att_id = f"attr:{city.lower().replace(' ', '-')}:{category}:{index}"
    name = f"{city} {noun} {index}"
    graph.add_node(
        Node(
            att_id,
            type="item, destination, attraction",
            name=name,
            category=category,
            city=city,
            keywords=f"{name} {category} attraction near {city} things to do",
        )
    )
    # Geographic containment, e.g. Fisherman's Wharf —belong→ San Francisco.
    graph.add_link(
        Link(f"in:{att_id}", att_id, city_id, type="belong, contains")
    )
    return att_id


def build_travel_site(config: TravelSiteConfig | None = None) -> TravelSite:
    """Construct the travel site deterministically from the config seed."""
    config = config or TravelSiteConfig()
    rng = random.Random(config.seed)
    graph = SocialContentGraph()
    site = TravelSite(graph=graph)
    site.personas = {"john": JOHN, "selma": SELMA, "alexia": ALEXIA}

    categories = list(CATEGORIES)

    # ---------------------------------------------------------------- content
    site.cities = list(CITIES[: config.num_cities])
    for city in site.cities:
        city_id = _add_city(graph, city)
        site.attractions_by_city[city] = []
        for i in range(config.attractions_per_city):
            category = categories[(i + len(site.attraction_ids)) % len(categories)]
            att_id = _add_attraction(graph, city, city_id, category, i)
            site.attraction_ids.append(att_id)
            site.attractions_by_city[city].append(att_id)
            site.attractions_by_category.setdefault(category, []).append(att_id)

    # ---------------------------------------------------------------- background users
    background = list(range(1, config.num_background_users + 1))
    interests: dict[int, list[str]] = {}
    for uid in background:
        picks = rng.sample(categories, k=2)
        interests[uid] = picks
        graph.add_node(Node(uid, type="user", name=f"user{uid}", interests=picks))

    link_seq = 0

    def visit(user: int, att_id: str, *, tag: bool) -> None:
        nonlocal link_seq
        link_seq += 1
        graph.add_link(Link(f"v:{link_seq}", user, att_id, type="act, visit"))
        if tag:
            link_seq += 1
            att = graph.node(att_id)
            tags = [str(att.value("category")), str(att.value("city")).lower()]
            graph.add_link(
                Link(f"t:{link_seq}", user, att_id, type="act, tag", tags=tags)
            )

    def befriend(a: int, b: int) -> None:
        if a == b or graph.has_link(f"fr:{a}->{b}"):
            return
        graph.add_link(Link(f"fr:{a}->{b}", a, b, type="connect, friend"))
        graph.add_link(Link(f"fr:{b}->{a}", b, a, type="connect, friend"))

    for uid in background:
        for friend in rng.sample(background, k=min(config.friends_per_user,
                                                   len(background))):
            befriend(uid, friend)
        for _ in range(config.visits_per_user):
            category = (
                rng.choice(interests[uid])
                if rng.random() < 0.75
                else rng.choice(categories)
            )
            pool = site.attractions_by_category.get(category, [])
            if not pool:
                continue
            visit(uid, rng.choice(pool), tag=rng.random() < config.tag_prob)

    # ---------------------------------------------------------------- John (Example 1)
    graph.add_node(Node(JOHN, type="user, traveler", name="John",
                        interests=("baseball",)))
    baseball = site.attractions_by_category.get("baseball", [])
    for att_id in baseball[: max(3, len(baseball) // 2)]:
        if "denver" not in att_id:  # John has NOT yet seen Denver's venues
            visit(JOHN, att_id, tag=True)
    # Baseball-fan friends: background users whose interests include baseball.
    fans = [u for u in background if "baseball" in interests[u]]
    for fan in fans[:8]:
        befriend(JOHN, fan)
        for att_id in baseball:
            if rng.random() < 0.4:
                visit(fan, att_id, tag=False)

    # ---------------------------------------------------------------- Selma (Example 2)
    graph.add_node(Node(SELMA, type="user, traveler", name="Selma",
                        interests=("music", "family")))
    musicians = [u for u in background if "music" in interests[u]][:10]
    for m in musicians:
        befriend(SELMA, m)
    # A handful of parent friends with family trips (incl. Barcelona).
    parents = [u for u in background if "family" in interests[u]][:4]
    family_pool = site.attractions_by_category.get("family", [])
    barcelona_family = [a for a in family_pool if "barcelona" in a]
    for p in parents:
        befriend(SELMA, p)
        for att_id in barcelona_family:
            visit(p, att_id, tag=True)
        if family_pool:
            visit(p, rng.choice(family_pool), tag=False)

    # ---------------------------------------------------------------- Alexia (Example 3)
    graph.add_node(Node(ALEXIA, type="user, student", name="Alexia",
                        interests=("history",)))
    graph.add_node(Node("grp:history-class", type="group",
                        name="history class"))
    graph.add_node(Node("grp:soccer-team", type="group", name="soccer team"))
    classmates = background[:10]
    soccer = background[10:20]
    history_pool = site.attractions_by_category.get("history", [])
    outdoors_pool = site.attractions_by_category.get("outdoors", [])
    link_seq += 1
    graph.add_link(Link(f"b:{link_seq}", ALEXIA, "grp:history-class",
                        type="belong, member"))
    link_seq += 1
    graph.add_link(Link(f"b:{link_seq}", ALEXIA, "grp:soccer-team",
                        type="belong, member"))
    for c in classmates:
        befriend(ALEXIA, c)
        link_seq += 1
        graph.add_link(Link(f"b:{link_seq}", c, "grp:history-class",
                            type="belong, member"))
        for att_id in rng.sample(history_pool, k=min(3, len(history_pool))):
            visit(c, att_id, tag=True)
    for s in soccer:
        befriend(ALEXIA, s)
        link_seq += 1
        graph.add_link(Link(f"b:{link_seq}", s, "grp:soccer-team",
                            type="belong, member"))
        for att_id in rng.sample(outdoors_pool, k=min(2, len(outdoors_pool))):
            visit(s, att_id, tag=True)

    return site

"""Synthetic Y!Travel query workload calibrated to Table 1.

The paper analysed 10 million real Y!Travel queries:

    ============  =========  ============  =========
    .             general    categorical   specific
    with loc      32.36%     22.52%        8.37%
    w/o loc       21.38%     5.34%         (n/a)
    ============  =========  ============  =========

with ~10% unclassifiable.  The real log is proprietary; this generator is
the documented substitution: it samples query *intents* from exactly those
marginals and renders each intent into realistic keyword text using the
shared lexicon.  The classifier under test
(:class:`repro.discovery.classify.QueryClassifier`) sees only the rendered
text, so regenerating Table 1 exercises the same location-detection +
lexicon classification path the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.lexicon import (
    DEFAULT_LEXICON,
    NOISE_TERMS,
    TravelLexicon,
)

#: Table 1 target shares (fractions of all queries).
TABLE1_TARGETS: dict[tuple[str, bool], float] = {
    ("general", True): 0.3236,
    ("general", False): 0.2138,
    ("categorical", True): 0.2252,
    ("categorical", False): 0.0534,
    ("specific", True): 0.0837,
}
#: Residual unclassifiable share ("about 10% of the queries").
NOISE_SHARE = 1.0 - sum(TABLE1_TARGETS.values())


@dataclass(frozen=True)
class TravelQuery:
    """One generated query with its ground-truth intent.

    ``intent`` ∈ {general, categorical, specific, noise};
    ``has_location`` records whether the generator put a location in.
    The classifier never sees these labels.
    """

    text: str
    intent: str
    has_location: bool


class QueryWorkloadGenerator:
    """Samples query intents from the Table 1 marginals and renders text."""

    def __init__(
        self,
        lexicon: TravelLexicon | None = None,
        seed: int = 1234,
    ):
        self.lexicon = lexicon or DEFAULT_LEXICON
        self._rng = random.Random(seed)
        cells = list(TABLE1_TARGETS.items()) + [(("noise", False), NOISE_SHARE)]
        self._cells = [cell for cell, _ in cells]
        self._weights = [weight for _, weight in cells]

    # -- rendering ------------------------------------------------------------

    def _location(self) -> str:
        return self._rng.choice(self.lexicon.locations)

    def _render_general(self, with_location: bool) -> str:
        rng = self._rng
        if with_location:
            loc = self._location()
            form = rng.random()
            if form < 0.35:
                return loc  # "just a location by itself" is general
            term = rng.choice(self.lexicon.general_terms)
            if form < 0.7:
                return f"{loc} {term}"
            return f"{term} in {loc}"
        return self._rng.choice(self.lexicon.general_terms)

    def _render_categorical(self, with_location: bool) -> str:
        rng = self._rng
        term = rng.choice(self.lexicon.categorical_terms)
        if with_location:
            loc = self._location()
            if rng.random() < 0.5:
                return f"{loc} {term}"
            if rng.random() < 0.5:
                return f"{term} in {loc}"
            extra = rng.choice(self.lexicon.categorical_terms)
            return f"{loc} {term} {extra}"
        if rng.random() < 0.3:
            extra = rng.choice(["best", "cheap", "top", "good"])
            return f"{extra} {term}"
        return term

    def _render_specific(self) -> str:
        rng = self._rng
        name, implied_loc = rng.choice(self.lexicon.specific_destinations)
        roll = rng.random()
        if roll < 0.6:
            return name
        if roll < 0.85:
            return f"{name} {implied_loc}"
        return f"{name} tickets"

    def _render_noise(self) -> str:
        rng = self._rng
        n = rng.randint(1, 2)
        return " ".join(rng.choice(NOISE_TERMS) for _ in range(n))

    # -- generation -------------------------------------------------------------

    def generate_one(self) -> TravelQuery:
        """Draw a single query."""
        intent, with_location = self._rng.choices(
            self._cells, weights=self._weights, k=1
        )[0]
        if intent == "general":
            text = self._render_general(with_location)
        elif intent == "categorical":
            text = self._render_categorical(with_location)
        elif intent == "specific":
            with_location = True  # a specific destination is a location
            text = self._render_specific()
        else:
            text = self._render_noise()
        return TravelQuery(text=text, intent=intent, has_location=with_location)

    def generate(self, n: int) -> Iterator[TravelQuery]:
        """Yield *n* queries."""
        for _ in range(n):
            yield self.generate_one()


def table1_counts(
    labels: Iterator[tuple[str, bool]] | list[tuple[str, bool]],
) -> dict[str, dict[str, float]]:
    """Tabulate (class, has_location) labels into the Table 1 grid.

    Returns fractions keyed ``[row][column]`` with rows ``with``/``without``
    plus an ``unclassified`` share, matching how the paper reports it.
    """
    counts: dict[tuple[str, bool], int] = {}
    total = 0
    unclassified = 0
    for label, has_loc in labels:
        total += 1
        if label in ("general", "categorical", "specific"):
            counts[(label, has_loc)] = counts.get((label, has_loc), 0) + 1
        else:
            unclassified += 1
    if total == 0:
        return {"with": {}, "without": {}, "unclassified": 0.0}
    grid = {
        "with": {
            c: counts.get((c, True), 0) / total
            for c in ("general", "categorical", "specific")
        },
        "without": {
            c: counts.get((c, False), 0) / total
            for c in ("general", "categorical", "specific")
        },
        "unclassified": unclassified / total,
    }
    return grid

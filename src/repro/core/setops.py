"""Set-theoretic binary operators (paper §5.2, Definitions 3 and 4).

    "Let G1 and G2 be two social content graphs originated from the same
    social content site.  nodes(G1 ⊕ G2) = nodes(G1) ⊕ nodes(G2) and
    links(G1 ⊕ G2) = links(G1) ⊕ links(G2), where ⊕ is one of ∪, ∩, \\,
    and nodes and links with the same id are consolidated in the output
    graph."

Nodes and links are matched **by id**, so graph isomorphism never arises.
The *Node-Driven Minus* keeps only links whose two endpoints survive the
node subtraction — the paper's example (G1={(a,b),(a,c),(b,c)}, G2={(a,b)}
⇒ G1\\G2 = the null graph {c}) pins down this reading.  The *Link-Driven
Minus* ``\\·`` subtracts links by id and keeps exactly the nodes induced by
the surviving links (Definition 4).

Lemma 1 states ``\\·`` is expressible via ``\\`` and ⋉; since the paper's
proof is omitted and pure endpoint-matching semi-joins cannot tell apart two
links with equal endpoints but different ids, we realise the lemma with the
id-matching anti-semi-join (see :func:`repro.core.semijoin.anti_semi_join`
with ``on='id'``); :func:`link_minus_via_semijoin` is that rewrite, and the
test-suite property-checks its equivalence with the direct definition.
"""

from __future__ import annotations

from repro.core.graph import Link, Node, SocialContentGraph


def union(g1: SocialContentGraph, g2: SocialContentGraph) -> SocialContentGraph:
    """G1 ∪ G2 with id-based consolidation of shared nodes/links."""
    out = SocialContentGraph(catalog=g1.catalog)
    for node in g1.nodes():
        out.add_node(node)
    for node in g2.nodes():
        out.add_node(node)  # add_node consolidates on shared ids
    for link in g1.links():
        out.add_link(link)
    for link in g2.links():
        out.add_link(link)  # add_link consolidates on shared ids
    return out


def intersection(g1: SocialContentGraph, g2: SocialContentGraph) -> SocialContentGraph:
    """G1 ∩ G2: nodes/links present (by id) in both, consolidated.

    Every surviving link's endpoints necessarily survive too (each input is
    well-formed), so the result is always a valid graph.
    """
    out = SocialContentGraph(catalog=g1.catalog)
    shared_nodes = g1.node_ids() & g2.node_ids()
    for node_id in shared_nodes:
        out.add_node(g1.node(node_id).merged_with(g2.node(node_id)))
    for link_id in g1.link_ids() & g2.link_ids():
        link = g1.link(link_id).merged_with(g2.link(link_id))
        if link.src in shared_nodes and link.tgt in shared_nodes:
            out.add_link(link)
    return out


def minus(g1: SocialContentGraph, g2: SocialContentGraph) -> SocialContentGraph:
    """Node-Driven Minus G1 \\ G2 (Definition 3 + the paper's remark).

    ``nodes = nodes(G1) \\ nodes(G2)``; a link survives when it is a G1 link
    absent from G2 **and** both its endpoints survive.  In the paper's
    example this yields the null graph containing only node ``c``.
    """
    out = SocialContentGraph(catalog=g1.catalog)
    keep_nodes = g1.node_ids() - g2.node_ids()
    for node_id in keep_nodes:
        out.add_node(g1.node(node_id))
    g2_links = g2.link_ids()
    for link in g1.links():
        if link.id in g2_links:
            continue
        if link.src in keep_nodes and link.tgt in keep_nodes:
            out.add_link(link)
    return out


def link_minus(g1: SocialContentGraph, g2: SocialContentGraph) -> SocialContentGraph:
    """Link-Driven Minus G1 \\· G2 (Definition 4).

    ``links = links(G1) \\ links(G2)`` (by id); nodes are precisely those
    induced by the surviving links.  On the paper's example this keeps all
    of a, b, c plus links (a,c) and (b,c).
    """
    g2_links = g2.link_ids()
    survivors = [link for link in g1.links() if link.id not in g2_links]
    return g1.subgraph_from_links(survivors)


def link_minus_via_semijoin(
    g1: SocialContentGraph, g2: SocialContentGraph
) -> SocialContentGraph:
    """Lemma 1 rewrite: ``G1 \\· G2 = G1 ⋉̄_id G2`` (id-matching anti-semi-join).

    Kept as a separate function so the optimizer can cite it and the tests
    can check equivalence with :func:`link_minus` on arbitrary graphs.
    """
    from repro.core.semijoin import anti_semi_join

    return anti_semi_join(g1, g2, on="id")


def symmetric_difference(
    g1: SocialContentGraph, g2: SocialContentGraph
) -> SocialContentGraph:
    """(G1 \\ G2) ∪ (G2 \\ G1) — a convenience derived operator."""
    return union(minus(g1, g2), minus(g2, g1))

"""Session behavior under ``explain=True`` and the serving plan cache.

Covers the satellite contract: responses carry a plan spanning the whole
pipeline (semantic candidates → social scoring → combination), golden
plan *shapes* pin the lowering rules structurally, pagination and cursors
behave exactly as without EXPLAIN, and compiled plans invalidate on
``invalidate()`` and on Data-Manager resync.
"""

from __future__ import annotations

import pytest

import factories
from repro.api import SearchRequest, Session
from repro.core import Node
from repro.plan import PlanExplain
from repro.workloads import JOHN, TravelSiteConfig, build_travel_site


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture()
def session(travel):
    return Session.from_graph(travel.graph)


def op_kinds(plan: PlanExplain) -> list[str]:
    """Structural fingerprint: each operator's leading token, pre-order."""
    kinds = []
    for profile in plan.operators:
        op = profile.op
        for sep in ("⟨", " ", "("):
            cut = op.find(sep)
            if cut != -1:
                op = op[:cut]
        kinds.append(op)
    return kinds


class TestExplainResponses:
    def test_plan_absent_by_default(self, session):
        response = session.run(SearchRequest(user_id=JOHN, text="denver"))
        assert response.plan is None

    def test_explain_carries_estimated_vs_actual_per_operator(self, session):
        response = session.run(
            SearchRequest(user_id=JOHN, text="denver", explain=True)
        )
        plan = response.plan
        assert isinstance(plan, PlanExplain)
        assert plan.access_path in ("index", "scan")
        assert len(plan.operators) >= 2  # σN over input(G)
        for profile in plan.operators:
            assert profile.estimated.nodes >= 0
            assert profile.actual is not None and profile.actual.nodes >= 0
        base = plan.operators[-1]
        assert base.op == "input(G)"
        assert base.actual.nodes == session.graph.num_nodes
        assert "input(G)" in plan.text and "est" in plan.text

    def test_explain_reports_the_access_decision(self, session):
        indexed = session.run(
            SearchRequest(user_id=JOHN, text="denver", explain=True)
        )
        scanned = session.run(
            SearchRequest(user_id=JOHN, text="denver", use_index=False,
                          explain=True)
        )
        assert indexed.plan.access_path == "index"
        assert indexed.index_used
        assert scanned.plan.access_path == "scan"
        assert not scanned.index_used
        assert indexed.plan.decisions and indexed.plan.decisions[0].chosen == "index"

    def test_recommendation_explains_as_scan(self, session):
        response = session.run(SearchRequest(user_id=JOHN, explain=True))
        assert response.plan.access_path == "scan"
        # No keyword selection to cost — the only decision on record is
        # the social stage's probe-vs-endorsement-index choice.
        assert [d.op for d in response.plan.decisions] == ["social⟨friends⟩"]

    def test_plan_covers_semantic_and_social_stages(self, session):
        response = session.run(
            SearchRequest(user_id=JOHN, text="denver", explain=True)
        )
        kinds = op_kinds(response.plan)
        # the social stage is fused into the combination (one operator)
        assert "combine+social" in kinds and "basis" in kinds
        assert "σN" in kinds and "input" in kinds
        assert response.plan.resolved_strategy == "friends"
        # every stage carries est vs. actual
        for profile in response.plan.operators:
            assert profile.actual is not None

    def test_results_identical_with_and_without_explain(self, session):
        plain = session.run(SearchRequest(user_id=JOHN, text="museum history"))
        explained = session.run(
            SearchRequest(user_id=JOHN, text="museum history", explain=True)
        )
        assert explained.items == plain.items
        assert explained.page_info == plain.page_info

    def test_pagination_and_cursors_unchanged_under_explain(self, session):
        first = session.run(SearchRequest(
            user_id=JOHN, text="denver", page_size=3, explain=True,
        ))
        assert first.page_info.next_cursor is not None
        # continue from an explain response without explain, and vice versa
        second = session.run(SearchRequest(
            user_id=JOHN, text="denver", cursor=first.page_info.next_cursor,
        ))
        second_explained = session.run(SearchRequest(
            user_id=JOHN, text="denver", cursor=first.page_info.next_cursor,
            explain=True,
        ))
        assert second.items == second_explained.items
        assert set(first.items).isdisjoint(second.items)
        assert second.page_info.offset == 3

    def test_builder_explain_toggle(self, session):
        response = session.query(JOHN).text("denver").explain().run()
        assert response.plan is not None
        assert session.query(JOHN).text("denver").build().explain is False


class TestGoldenPlanShapes:
    """Snapshot-style assertions on full-pipeline plan structure.

    A fixed seed graph pins the operator kinds *and* their pre-order
    positions, so a lowering-rule regression (missing stage, wrong child
    order, dropped DAG sharing) fails structurally — not just by score.
    """

    @pytest.fixture()
    def fixed_session(self):
        return Session.from_graph(factories.social_site_graph())

    def test_keyword_friend_pipeline_shape(self, fixed_session):
        response = fixed_session.run(
            SearchRequest(user_id="u0", text="topic0", explain=True)
        )
        # the social stage feeds only the combination, so the compiler
        # fuses the pair into one operator over (graph, candidates, basis)
        assert op_kinds(response.plan) == [
            "combine+social",
            "input",
            "σN", "input",                      # shared candidate stage
            "basis", "input",                   # connection selection
        ]
        assert "[fused-probe]" in response.plan.operators[0].op
        assert response.plan.resolved_strategy == "friends"

    def test_recommendation_pipeline_shape(self, fixed_session):
        response = fixed_session.run(
            SearchRequest(user_id="u0", explain=True)
        )
        assert op_kinds(response.plan) == [
            "combine+social",
            "input",
            "σN", "input",
            "basis", "input",
        ]
        (decision,) = response.plan.decisions
        assert decision.op == "social⟨friends⟩"
        assert decision.chosen in ("scan", "network-exact",
                                   "network-clustered")

    def test_similarity_strategies_lower_to_grouped_aggregation(
        self, fixed_session
    ):
        for strategy in ("similar_users", "cf", "item_based"):
            response = fixed_session.run(SearchRequest(
                user_id="u0", text="topic0", strategy=strategy, explain=True,
            ))
            social_ops = [p.op for p in response.plan.operators
                          if "social" in p.op]
            assert social_ops and all("[fused-group-agg]" in op
                                      for op in social_ops)

    def test_forced_network_index_shape_and_parity(self, fixed_session):
        plain = fixed_session.run(SearchRequest(user_id="u0"))
        forced = fixed_session.run(
            SearchRequest(user_id="u0", use_index=True, explain=True)
        )
        assert forced.items == plain.items
        social_ops = [p.op for p in forced.plan.operators
                      if p.op.startswith("social")]
        assert social_ops and all("endorse-merge" in op for op in social_ops)
        assert fixed_session.stats.social_index_queries >= 1

    def test_strategy_auto_records_a_cost_based_decision(self, fixed_session):
        response = fixed_session.run(
            SearchRequest(user_id="u0", strategy="auto", explain=True)
        )
        decision = response.plan.strategy_decision
        assert decision is not None
        assert decision.chosen == "friends"  # connected + active population
        assert decision.considered == ("friends", "similar_users",
                                       "item_based")
        assert response.resolved["social_strategy"] == "friends"

    def test_forced_scan_keeps_whole_pipeline_on_scan_forms(
        self, fixed_session
    ):
        response = fixed_session.run(SearchRequest(
            user_id="u0", text="topic0", use_index=False, explain=True,
        ))
        text = response.plan.text
        assert "endorse-merge" not in text and "[index:" not in text
        assert response.plan.access_path == "scan"

    def test_runtime_degrade_is_visible_in_explain_and_stats(self):
        # Duplicate (user, item) act pairs put the graph outside the
        # regime the endorsement index can serve exactly: the lowered
        # merge op must fall back to the probe, say so in EXPLAIN, and
        # not count as an index-served query.
        from repro.core import Link

        graph = factories.social_site_graph(num_users=4, num_items=4)
        graph.add_link(Link("dup", "u1", "i1", type="act, tag",
                            tags="again"))
        session = Session.from_graph(graph)
        response = session.run(
            SearchRequest(user_id="u0", use_index=True, explain=True)
        )
        merge_rows = [p.op for p in response.plan.operators
                      if "endorse-merge" in p.op]
        assert merge_rows and all("(degraded→probe)" in op
                                  for op in merge_rows)
        assert session.stats.social_index_queries == 0
        # and the degraded run still matches the pure probe path
        scanned = session.run(SearchRequest(user_id="u0", use_index=False))
        assert response.items == scanned.items

    def test_custom_strategy_still_honors_use_index(self, travel):
        # Custom strategies route through the hand-executed reference
        # path; the request's access preference must still reach the
        # semantic stage there.
        class Constant:
            name = "constant"

            def score(self, graph, user_id, candidates, basis=None):
                from repro.discovery import SocialScores

                return SocialScores(strategy=self.name,
                                    scores={c: 1.0 for c in candidates})

        session = Session.from_graph(travel.graph)
        session.discoverer.strategies["constant"] = Constant()
        indexed = session.run(SearchRequest(
            user_id=JOHN, text="denver", strategy="constant",
        ))
        scanned = session.run(SearchRequest(
            user_id=JOHN, text="denver", strategy="constant",
            use_index=False,
        ))
        assert scanned.index_used is False
        assert indexed.items == scanned.items


class TestServingPlanCache:
    def test_repeated_requests_hit_the_plan_cache(self, session):
        request = SearchRequest(user_id=JOHN, text="Denver attractions")
        session.run(request)
        compiles = session.stats.plan_compiles
        session.run(request)
        session.run(request)
        assert session.stats.plan_cache_hits >= 2
        assert session.stats.plan_compiles == compiles  # no recompilation

    def test_distinct_queries_compile_distinct_plans(self, session):
        session.run(SearchRequest(user_id=JOHN, text="museum"))
        before = session.stats.plan_compiles
        session.run(SearchRequest(user_id=JOHN, text="baseball"))
        assert session.stats.plan_compiles == before + 1

    def test_invalidate_revalidates_against_the_graph_epoch(self, session):
        # Cache entries are stamped with the graph's mutation epoch, not
        # a planner-local counter: a pure invalidate() with no actual
        # change revalidates the cached plan (it is still correct).  The
        # scorer-free recommendation shape shows it — keyword plans key
        # on the tf-idf scorer's identity, which a refresh rebuilds.
        request = SearchRequest(user_id=JOHN)
        session.run(request)
        session.run(request)
        hits_before = session.stats.plan_cache_hits
        compiles_before = session.stats.plan_compiles
        session.invalidate()
        session.run(request)
        assert session.stats.plan_compiles == compiles_before
        assert session.stats.plan_cache_hits == hits_before + 1
        # an in-place graph mutation, by contrast, kills the entry even
        # though the graph object (and so the anchor) is unchanged
        session.graph.add_node(Node("x:epoch", type="item, destination",
                                    name="Epoch Spot", keywords="denver"))
        session.invalidate()
        session.run(request)
        assert session.stats.plan_compiles == compiles_before + 1

    def test_datamanager_resync_invalidates_plans(self, session):
        request = SearchRequest(user_id=JOHN, text="special")
        session.run(request)
        compiles_before = session.stats.plan_compiles
        session.data_manager.add_node(Node(
            "x:new", type="item, destination", name="Special Spot",
            keywords="special denver",
        ))
        response = session.run(request)
        assert session.stats.plan_compiles == compiles_before + 1
        # and the recompiled plan sees the new item
        assert "x:new" in response.items

    def test_explain_reports_cache_state(self, session):
        request = SearchRequest(user_id=JOHN, text="art galleries", explain=True)
        first = session.run(request)
        second = session.run(request)
        assert first.plan.cache_hit is False
        assert second.plan.cache_hit is True

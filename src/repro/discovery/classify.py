"""Query classification into general / categorical / specific (Table 1).

    "By leveraging the domain knowledge we have about geographical
    locations and travel destinations, we detect location terms in queries
    and classify each query into three classes: general, categorical, and
    specific.  General queries are those containing terms like 'things to
    do', 'attraction', or just a location by itself.  ...  Categorical
    queries refer to those containing terms like 'hotel', 'family',
    'historic', etc.  ...  there are also about 8% of the queries looking
    for specific destinations like 'Disneyland' and 'Yosemite Park'."

:class:`QueryClassifier` realises that rule set over the shared lexicon.
Precedence: a specific destination mention wins (it *is* the information
need), then categorical terms, then general terms or a bare location; text
matching nothing is unclassified (the paper's residual ~10%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.text import tokenize
from repro.workloads.lexicon import DEFAULT_LEXICON, TravelLexicon

GENERAL = "general"
CATEGORICAL = "categorical"
SPECIFIC = "specific"
UNCLASSIFIED = "unclassified"


@dataclass(frozen=True)
class ClassifiedQuery:
    """Classifier output for one query string."""

    text: str
    query_class: str
    has_location: bool

    @property
    def label(self) -> tuple[str, bool]:
        """(class, has_location) pair as used by Table 1 tabulation."""
        return (self.query_class, self.has_location)


class QueryClassifier:
    """Rule-based classifier over the travel lexicon."""

    def __init__(self, lexicon: TravelLexicon | None = None):
        self.lexicon = lexicon or DEFAULT_LEXICON

    def classify(self, text: str) -> ClassifiedQuery:
        """Classify one query string."""
        tokens = tokenize(text)
        if not tokens:
            return ClassifiedQuery(text, UNCLASSIFIED, False)
        is_specific = self.lexicon.contains_phrase(tokens, "specific")
        has_location = (
            is_specific  # a specific destination implies a location
            or self.lexicon.contains_phrase(tokens, "locations")
        )
        if is_specific:
            return ClassifiedQuery(text, SPECIFIC, True)
        if self.lexicon.contains_phrase(tokens, "categorical"):
            return ClassifiedQuery(text, CATEGORICAL, has_location)
        if self.lexicon.contains_phrase(tokens, "general"):
            return ClassifiedQuery(text, GENERAL, has_location)
        if has_location:
            # "just a location by itself" (possibly with filler) is general.
            return ClassifiedQuery(text, GENERAL, True)
        return ClassifiedQuery(text, UNCLASSIFIED, False)

    def classify_many(self, texts) -> list[ClassifiedQuery]:
        """Classify an iterable of query strings."""
        return [self.classify(t) for t in texts]

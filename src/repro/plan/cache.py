"""Version-keyed caches of compiled physical plans.

Keys are structural (:func:`repro.core.expr.plan_key` plus the access
preference), so a repeated request — same condition, same scorer, same
shape — skips the optimizer and lowering entirely.  Every entry is stamped
with the generation of the graph it was compiled against; a lookup under
any other generation misses, which is how Data-Manager writes and session
refreshes invalidate stale plans without eagerly walking the cache.

Entries hold *plans*, never results: a cached plan re-executes against the
live graph, and :meth:`PhysicalPlan.execute` guarantees its result aliases
no shared state, so cache hits cannot observe a caller's mutations.

Two granularities:

* :class:`PlanCache` — one owner, the original per-planner LRU;
* :class:`SharedPlanCache` — one per *process*
  (:func:`shared_plan_cache`), serving every planner at once so sessions
  answering the same hot queries amortize compilation across each other.
  Shared entries are additionally *anchored* to the graph object they
  were compiled against (a weak reference, identity-compared on lookup)
  — two planners can never exchange plans across different graphs even
  if their namespaced keys and generation counters happen to collide —
  and inserts pass a frequency-based admission policy: once the cache is
  full, a key must have missed ``admit_after`` times before it may evict
  a resident plan (a TinyLFU-style doorkeeper, so one-off queries cannot
  flush the hot set).
"""

from __future__ import annotations

import threading
import weakref
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.plan.physical import PhysicalPlan


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one plan cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    #: inserts the admission policy turned away (SharedPlanCache only)
    rejects: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Thread-safe LRU of ``key → (generation, PhysicalPlan)``."""

    def __init__(self, maxsize: int = 256):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize!r}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, tuple[Any, PhysicalPlan]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, generation: Any,
            anchor: Any = None) -> PhysicalPlan | None:
        """The cached plan for *key* compiled under *generation*, or None.

        A generation mismatch counts as a miss and drops the stale entry.
        (*anchor* exists for signature compatibility with
        :class:`SharedPlanCache`; a single-owner cache has no use for it.)
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == generation:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry[1]
            if entry is not None:
                del self._entries[key]  # stale: compiled against an old graph
            self._misses += 1
            return None

    def put(self, key: Hashable, generation: Any, plan: PhysicalPlan,
            anchor: Any = None) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail past maxsize."""
        with self._lock:
            self._entries[key] = (generation, plan)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
            )


class SharedPlanCache(PlanCache):
    """The process-wide plan cache: anchored entries, admission-gated.

    See the module docstring for the two safety layers on top of the LRU:
    weak *anchor* identity (an entry only serves the exact graph object it
    was compiled against) and the ``admit_after`` doorkeeper (a full cache
    only evicts for keys that have proven they repeat).
    """

    def __init__(self, maxsize: int = 1024, admit_after: int = 2):
        super().__init__(maxsize)
        if admit_after < 1:
            raise ValueError(
                f"admit_after must be >= 1, got {admit_after!r}"
            )
        self.admit_after = admit_after
        #: miss frequency per key — the doorkeeper's evidence of reuse
        self._seen: Counter = Counter()
        self._rejects = 0

    @staticmethod
    def _anchor_alive(ref: Any, anchor: Any) -> bool:
        if ref is None:
            return anchor is None
        target = ref()
        # a dead referent must never match — not even an anchor of None —
        # or a recycled graph address could inherit a stale plan
        return target is not None and target is anchor

    def get(self, key: Hashable, generation: Any,
            anchor: Any = None) -> PhysicalPlan | None:
        """Anchored lookup; every miss feeds the admission frequency."""
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry[0] == generation
                and self._anchor_alive(entry[2], anchor)
            ):
                self._entries.move_to_end(key)
                self._hits += 1
                return entry[1]
            if entry is not None:
                del self._entries[key]  # stale generation or dead anchor
            self._misses += 1
            self._seen[key] += 1
            if len(self._seen) > 8 * self.maxsize:
                self._age_locked()
            return None

    def _age_locked(self) -> None:
        """Halve all frequencies, dropping zeros (TinyLFU-style aging)."""
        self._seen = Counter({
            key: count // 2
            for key, count in self._seen.items()
            if count // 2 > 0
        })

    def put(self, key: Hashable, generation: Any, plan: PhysicalPlan,
            anchor: Any = None) -> None:
        """Insert if resident, the cache has room, or the key earned it."""
        ref = weakref.ref(anchor) if anchor is not None else None
        with self._lock:
            if (
                key not in self._entries
                and len(self._entries) >= self.maxsize
                and self._seen[key] < self.admit_after
            ):
                self._rejects += 1
                return
            self._entries[key] = (generation, plan, ref)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def reset(self) -> None:
        """Drop entries, frequencies *and* counters (test isolation)."""
        with self._lock:
            self._entries.clear()
            self._seen.clear()
            self._hits = self._misses = self._evictions = 0
            self._rejects = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                rejects=self._rejects,
            )


_shared_cache: SharedPlanCache | None = None
_shared_cache_lock = threading.Lock()


def shared_plan_cache() -> SharedPlanCache:
    """The process-wide cache every :class:`QueryPlanner` defaults to."""
    global _shared_cache
    if _shared_cache is None:
        with _shared_cache_lock:
            if _shared_cache is None:
                _shared_cache = SharedPlanCache()
    return _shared_cache

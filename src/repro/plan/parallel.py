"""Pooled execution: a shared worker pool and a dataflow DAG scheduler.

A physical plan is a DAG of side-effect-free operators (the
:class:`~repro.plan.physical.PhysicalOp` / ``ExecContext`` contract:
operators read their inputs and the context's providers, and write only
their own memo/profile slots).  That makes independent sub-plans — union
branches, the two sides of the social stage, per-shard scan tasks —
safely schedulable on a thread pool.

Two pieces live here:

* :class:`WorkerPool` — a lazily-started ``ThreadPoolExecutor`` wrapper
  with task accounting.  One process-wide pool is shared by default
  (:func:`shared_worker_pool`): executor threads are a per-process
  resource exactly like the shared plan cache, and serving stacks should
  not each spin up their own.
* :func:`execute_pooled` — a dataflow scheduler: every operator becomes a
  task once all of its children have finished; *expandable* operators
  (the sharded scan) fan out into one task per shard plus a finalizer.
  Nothing ever blocks inside a worker waiting for another task, so the
  schedule is deadlock-free at any pool size.

Sequential execution (``PhysicalOp.execute``) remains the default for
small plans — the compiler's cost threshold decides, because pool
handoff latency swamps sub-millisecond operators.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.graph import SocialContentGraph
    from repro.plan.physical import ExecContext, PhysicalOp

#: Default pool width: bounded so a serving box is not oversubscribed by
#: plan execution alone (request-level parallelism exists too).
DEFAULT_MAX_WORKERS = max(2, min(8, os.cpu_count() or 2))


class WorkerPool:
    """A lazily-started thread pool with task accounting.

    The underlying executor is created on first use (importing the plan
    package must not spawn threads) and reused for every plan afterwards;
    ``tasks_run`` counts scheduled operator tasks, which the benchmarks
    and the EXPLAIN header read.
    """

    def __init__(self, max_workers: int | None = None,
                 name: str = "plan-worker"):
        self.max_workers = (
            max_workers if max_workers is not None else DEFAULT_MAX_WORKERS
        )
        if self.max_workers <= 0:
            raise ValueError(
                f"max_workers must be positive, got {self.max_workers!r}"
            )
        self._name = name
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.tasks_run = 0

    @property
    def executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            with self._lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix=self._name,
                    )
        return self._executor

    def submit(self, fn: Callable, *args: object, **kwargs: object) -> Future:
        with self._lock:
            self.tasks_run += 1
        return self.executor.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:
        started = self._executor is not None
        return (
            f"WorkerPool(max_workers={self.max_workers}, "
            f"started={started}, tasks_run={self.tasks_run})"
        )


_shared_pool: WorkerPool | None = None
_shared_pool_lock = threading.Lock()


def shared_worker_pool() -> WorkerPool:
    """The process-wide pool plan execution defaults to."""
    global _shared_pool
    if _shared_pool is None:
        with _shared_pool_lock:
            if _shared_pool is None:
                _shared_pool = WorkerPool()
    return _shared_pool


def execute_pooled(
    root: "PhysicalOp", ctx: "ExecContext", pool: WorkerPool
) -> "SocialContentGraph":
    """Run a physical DAG on *pool*, operators firing as inputs complete.

    Produces exactly the graphs (and operator profiles) sequential
    execution would — the parity suite holds the two equal — but
    wall-clock is bounded by the critical path instead of the operator
    sum.  Scheduling state lives entirely in this call frame; the context
    is only written through the operators' own profiling slots, plus
    ``ctx.workers`` recording which pool thread ran each operator.
    """
    ops: dict[int, "PhysicalOp"] = {}
    postorder: list["PhysicalOp"] = []

    def collect(op: "PhysicalOp") -> None:
        if id(op) in ops:
            return
        ops[id(op)] = op
        for child in op.children:
            collect(child)
        postorder.append(op)

    collect(root)

    dependents: dict[int, list["PhysicalOp"]] = {key: [] for key in ops}
    pending: dict[int, int] = {}
    for op in postorder:
        unique_children = {id(child) for child in op.children}
        pending[id(op)] = len(unique_children)
        for child_key in unique_children:
            dependents[child_key].append(op)

    state_lock = threading.Lock()
    done = threading.Event()
    failures: list[BaseException] = []
    #: per-expanded-op remaining subtask count and collected parts
    fanout: dict[int, list] = {}

    def fail(error: BaseException) -> None:
        with state_lock:
            failures.append(error)
        done.set()

    def op_finished(op: "PhysicalOp") -> None:
        if op is root:
            done.set()
            return
        ready: list["PhysicalOp"] = []
        with state_lock:
            for parent in dependents[id(op)]:
                pending[id(parent)] -= 1
                if pending[id(parent)] == 0:
                    ready.append(parent)
        for parent in ready:
            schedule(parent)

    def run_plain(op: "PhysicalOp") -> None:
        try:
            inputs = [ctx.memo[id(child)] for child in op.children]
            op.run_profiled(ctx, inputs)
        except BaseException as error:  # surfaced to the caller
            fail(error)
            return
        op_finished(op)

    def run_subtask(op: "PhysicalOp", index: int, task: Callable) -> None:
        try:
            part = task()
        except BaseException as error:
            fail(error)
            return
        finalize = False
        with state_lock:
            slots = fanout[id(op)]
            slots[0] -= 1
            slots[1][index] = part
            finalize = slots[0] == 0
        if finalize:
            run_finalize(op)

    def run_finalize(op: "PhysicalOp") -> None:
        try:
            inputs = [ctx.memo[id(child)] for child in op.children]
            parts = fanout[id(op)][1]
            op.finish_subtasks(ctx, inputs, parts)
        except BaseException as error:
            fail(error)
            return
        op_finished(op)

    def schedule(op: "PhysicalOp") -> None:
        if failures:
            return
        if (
            op.memo_key is not None
            and ctx.result_cache is not None
            and op.memo_key in ctx.result_cache
        ):
            # the sub-plan memo already holds this result: don't fan out,
            # let run_profiled serve (and profile) the memo hit
            pool.submit(run_plain, op)
            return
        inputs = [ctx.memo[id(child)] for child in op.children]
        try:
            tasks = op.subtasks(ctx, inputs)
        except BaseException as error:
            fail(error)
            return
        if not tasks:
            pool.submit(run_plain, op)
            return
        with state_lock:
            fanout[id(op)] = [len(tasks), [None] * len(tasks)]
        for index, task in enumerate(tasks):
            pool.submit(run_subtask, op, index, task)

    initially_ready = [op for op in postorder if pending[id(op)] == 0]
    for op in initially_ready:
        schedule(op)
    done.wait()
    if failures:
        raise failures[0]
    return ctx.memo[id(root)]

"""The Information Presentation layer (paper §3 and §7).

Grouping (social / topical / structural / endorser-group), group
meaningfulness and dimension choice, hierarchical zoom, ranking within and
across groups, and item/group explanations.
"""

from repro.presentation.diversify import (
    coverage_diversify,
    intra_list_similarity,
    mmr_diversify,
)
from repro.presentation.explanations import (
    COLLABORATIVE,
    CONTENT_BASED,
    Explanation,
    GroupExplanation,
    explain_collaborative,
    explain_content_based,
    explain_group,
    item_similarity,
    user_similarity,
)
from repro.presentation.grouping import (
    Group,
    GroupingResult,
    endorser_group_grouping,
    social_grouping,
    structural_grouping,
    topical_grouping,
)
from repro.presentation.hierarchy import (
    Frame,
    HierarchicalPresenter,
    restrict_msg,
)
from repro.presentation.meaningful import (
    MeaningfulnessWeights,
    balance_score,
    choose_grouping,
    count_score,
    meaningfulness,
    quality_score,
)
from repro.presentation.organizer import (
    InformationOrganizer,
    OrganizerConfig,
    ResultEntry,
    ResultGroup,
    ResultPage,
)
from repro.presentation.ranking import RankedGroup, ResultSelector

__all__ = [
    "Group", "GroupingResult",
    "social_grouping", "topical_grouping", "structural_grouping",
    "endorser_group_grouping",
    "MeaningfulnessWeights", "meaningfulness", "choose_grouping",
    "count_score", "quality_score", "balance_score",
    "HierarchicalPresenter", "Frame", "restrict_msg",
    "ResultSelector", "RankedGroup",
    "Explanation", "GroupExplanation", "explain_content_based",
    "explain_collaborative", "explain_group", "item_similarity",
    "user_similarity", "CONTENT_BASED", "COLLABORATIVE",
    "InformationOrganizer", "OrganizerConfig",
    "ResultPage", "ResultGroup", "ResultEntry",
    "mmr_diversify", "coverage_diversify", "intra_list_similarity",
]

#!/usr/bin/env python
"""Network-aware top-k search and index clustering (paper §6.2).

Builds a del.icio.us-like tagging site, then walks the paper's §6.2 design
space: exact per-(tag,user) lists, the 1 TB-at-scale estimate, the three
user-clustering strategies (Definitions 11-13), Eq 1 score upper bounds,
and the space/time trade-off between them.

Run:  python examples/network_aware_search.py
"""

import random
import time

from repro.indexing import (
    ClusteredIndex,
    ExactUserIndex,
    GlobalPopularityIndex,
    TaggingData,
    behavior_clustering,
    hybrid_clustering,
    network_clustering,
    paper_scale_estimate,
)
from repro.workloads import TaggingSiteConfig, build_tagging_site

site = build_tagging_site(TaggingSiteConfig(
    num_users=200, num_items=500, num_tags=40, seed=11,
))
data = TaggingData.from_graph(site.graph)
print(f"tagging site: {len(data.users)} users, {len(data.item_ids)} items, "
      f"{len(data.tag_vocab)} tags, {len(data.taggers)} (item,tag) pairs")

# ------------------------------------------------------- the 1 TB estimate
estimate = paper_scale_estimate()
print(f"\npaper-scale analytic estimate (100k users / 1M items / 1k tags, "
      f"20 tags per item from 5% of users):")
print(f"  {estimate.entries:.2e} entries  ->  {estimate.terabytes:.2f} TB "
      f"at 10 bytes/entry  (the paper's '~1 terabyte')")

# --------------------------------------------------------------- the indexes
exact = ExactUserIndex(data)
global_index = GlobalPopularityIndex(data)
print(f"\nexact per-(tag,user) index:  {exact.report().entries:>8} entries in "
      f"{exact.report().lists} lists")
print(f"global per-tag baseline:     {global_index.report().entries:>8} entries")

theta = 0.3
clusterings = {
    "network (Def 11)": network_clustering(data, theta),
    "behavior (Def 12)": behavior_clustering(data, theta),
    "hybrid (Def 13)": hybrid_clustering(data, 0.05),
}
indexes = {}
print(f"\nclustered indexes at θ={theta}:")
for name, clustering in clusterings.items():
    index = ClusteredIndex(data, clustering)
    indexes[name] = index
    report = index.report()
    ratio = exact.report().entries / max(report.entries, 1)
    print(f"  {name:<18} {clustering.num_clusters:>4} clusters  "
          f"{report.entries:>8} entries  ({ratio:.2f}x smaller than exact)")

# ----------------------------------------------------------- query behaviour
rng = random.Random(0)
queries = [
    (rng.choice(data.users), rng.sample(data.tag_vocab, k=2))
    for _ in range(100)
]

def run(index) -> tuple[float, float, float]:
    start = time.perf_counter()
    total_exact = total_sorted = 0
    for user, keywords in queries:
        _, stats = index.query(user, keywords, 10)
        total_exact += stats.exact_computations
        total_sorted += stats.sorted_accesses
    elapsed = (time.perf_counter() - start) * 1000
    return elapsed, total_sorted / len(queries), total_exact / len(queries)

print("\nquery processing (100 random 2-keyword top-10 queries):")
print(f"  {'index':<18} {'ms total':>9} {'sorted/q':>9} {'exact/q':>8}")
ms, sa, ex = run(exact)
print(f"  {'exact':<18} {ms:>9.1f} {sa:>9.1f} {ex:>8.1f}")
for name, index in indexes.items():
    ms, sa, ex = run(index)
    print(f"  {name:<18} {ms:>9.1f} {sa:>9.1f} {ex:>8.1f}")
print("(clustered indexes trade index size for exact-score recomputation at "
      "query time — the paper's stated compromise)")

# ------------------------------------------------------------- one real query
user = data.users[0]
keywords = data.tag_vocab[:2]
results, stats = exact.query(user, keywords, 5)
print(f"\ntop-5 for user {user}, keywords {keywords}:")
for item, score in results:
    print(f"  {item:<10} score={score:.0f}  "
          f"(endorsed by {int(score)} network members across keywords)")
personalized = {i for i, _ in results}
global_results, _ = global_index.query(user, keywords, 5)
overlap = len(personalized & {i for i, _ in global_results})
print(f"overlap with the non-personalised global ranking: {overlap}/5 "
      "(network-aware scoring personalises the answer)")

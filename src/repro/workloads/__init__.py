"""Synthetic workloads standing in for the paper's proprietary data.

Substitutions (documented in DESIGN.md §1.5):

* :mod:`repro.workloads.generator` — generic social content site
  (small-world network, Zipfian activity);
* :mod:`repro.workloads.travel` — Y!Travel-like site with the paper's
  three personas (John / Selma / Alexia);
* :mod:`repro.workloads.tagging` — del.icio.us-like tagging site with
  community structure (for §6.2's index/clustering study);
* :mod:`repro.workloads.queries` — the Table 1 query workload;
* :mod:`repro.workloads.lexicon` — the shared travel gazetteer/lexicons.
"""

from repro.workloads.generator import (
    DEFAULT_CATEGORIES,
    GeneratedSite,
    WorkloadConfig,
    build_site,
)
from repro.workloads.lexicon import DEFAULT_LEXICON, TravelLexicon
from repro.workloads.queries import (
    NOISE_SHARE,
    QueryWorkloadGenerator,
    TABLE1_TARGETS,
    TravelQuery,
    table1_counts,
)
from repro.workloads.tagging import TaggingSite, TaggingSiteConfig, build_tagging_site
from repro.workloads.travel import (
    ALEXIA,
    CITIES,
    JOHN,
    SELMA,
    TravelSite,
    TravelSiteConfig,
    build_travel_site,
)

__all__ = [
    "WorkloadConfig", "GeneratedSite", "build_site", "DEFAULT_CATEGORIES",
    "TravelSiteConfig", "TravelSite", "build_travel_site",
    "JOHN", "SELMA", "ALEXIA", "CITIES",
    "TaggingSiteConfig", "TaggingSite", "build_tagging_site",
    "QueryWorkloadGenerator", "TravelQuery", "table1_counts",
    "TABLE1_TARGETS", "NOISE_SHARE",
    "TravelLexicon", "DEFAULT_LEXICON",
]

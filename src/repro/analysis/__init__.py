"""The Content Analyzer half of the Information Discovery layer (§3, §5).

Offline analyses that enrich the social content graph with derived nodes
and links: LDA topics, association rules, user/item similarity.
"""

from repro.analysis.analyzer import AnalysisRun, ContentAnalyzer
from repro.analysis.association import (
    Rule,
    frequent_itemsets,
    mine_rules,
    transactions_from_graph,
)
from repro.analysis.lda import LdaModel, fit_lda
from repro.analysis.similarity import (
    cosine,
    item_similarity_links,
    items_of_users,
    jaccard,
    network_of_users,
    taggers_of_items,
    user_similarity_links,
)
from repro.analysis.topics import TopicDerivation, derive_topics, item_documents

__all__ = [
    "ContentAnalyzer", "AnalysisRun",
    "fit_lda", "LdaModel",
    "frequent_itemsets", "mine_rules", "Rule", "transactions_from_graph",
    "jaccard", "cosine", "items_of_users", "network_of_users",
    "taggers_of_items", "user_similarity_links", "item_similarity_links",
    "derive_topics", "TopicDerivation", "item_documents",
]

"""Structured query requests and responses for the session API.

The paper's Figure 1 is a serving loop — query in, organized result page
out — so the request is a first-class value: a frozen
:class:`SearchRequest` carrying everything one evaluation needs (the user,
the content/structural query, per-request overrides of the discovery
tunables, and a pagination window).  Being frozen and value-like, requests
hash, dedupe, replay and batch cleanly.

Responses pair the organized :class:`~repro.presentation.ResultPage` with
:class:`PageInfo` (deterministic pagination bookkeeping plus an opaque
continuation cursor) and per-query evaluation notes.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Mapping

from repro.core import Condition, Id, as_condition
from repro.errors import QueryError, RestartCursorError
from repro.plan import PlanExplain
from repro.presentation import ResultGroup, ResultPage


@dataclass(frozen=True)
class SearchRequest:
    """One structured query against a session.

    Fields beyond ``user_id`` are optional; ``None`` means "use the
    session's configured default".  ``page``/``page_size`` select a window
    of the full deterministic ranking; a ``cursor`` (from a previous
    response's :attr:`PageInfo.next_cursor`) overrides ``page``.
    """

    user_id: Id
    text: str = ""
    structural: Condition | None = None
    #: social strategy name (session default when None)
    strategy: str | None = None
    #: semantic weight α ∈ [0, 1] (session default when None)
    alpha: float | None = None
    #: hard budget on the ranked list: at most k items exist across all
    #: pages; also the default window size (max_results when None)
    k: int | None = None
    #: force a grouping dimension ("social", "topical", "endorser",
    #: "structural:<facet>"); None lets §7.1 meaningfulness choose
    grouping: str | None = None
    #: 1-based page number over windows of ``page_size``
    page: int = 1
    #: window size (defaults to ``k`` or the discovery max_results)
    page_size: int | None = None
    #: opaque continuation token; takes precedence over ``page``
    cursor: str | None = None
    #: route keyword scoping through the semantic index (None = auto: the
    #: compiler's cost model chooses; True forces the index where eligible;
    #: False refuses it)
    use_index: bool | None = None
    #: attach the executed physical plan (per-operator estimated vs. actual
    #: cardinalities, rewrites, access path) to the response
    explain: bool = False

    def __post_init__(self) -> None:
        if self.user_id is None:
            raise QueryError("a search request needs a requesting user")
        if isinstance(self.structural, Mapping):
            object.__setattr__(self, "structural", as_condition(self.structural))
        if self.alpha is not None and not 0.0 <= self.alpha <= 1.0:
            raise QueryError(f"alpha must be in [0, 1], got {self.alpha!r}")
        if self.k is not None and self.k <= 0:
            raise QueryError(f"k must be positive, got {self.k!r}")
        if self.page < 1:
            raise QueryError(f"page is 1-based, got {self.page!r}")
        if self.page_size is not None and self.page_size <= 0:
            raise QueryError(
                f"page_size must be positive, got {self.page_size!r}"
            )

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes: Any) -> "SearchRequest":
        """A copy with the given fields changed (validation re-runs)."""
        return replace(self, **changes)

    def next_page(self) -> "SearchRequest":
        """The request for the following page (cursor cleared)."""
        return self.replace(page=self.page + 1, cursor=None)

    @property
    def is_recommendation(self) -> bool:
        """True for the empty query (§4's pure-social mode)."""
        return not self.text and self.structural is None


@dataclass(frozen=True)
class PageInfo:
    """Deterministic pagination bookkeeping for one response."""

    page: int
    page_size: int
    offset: int
    returned: int
    total_items: int
    next_cursor: str | None = None

    @property
    def total_pages(self) -> int:
        """Number of non-empty pages in the full ranking."""
        if self.total_items == 0:
            return 0
        return -(-self.total_items // self.page_size)

    @property
    def has_next(self) -> bool:
        """True when a later window still holds items."""
        return self.offset + self.returned < self.total_items

    @property
    def has_prev(self) -> bool:
        return self.offset > 0


@dataclass(frozen=True)
class SearchResponse:
    """The organized answer to one :class:`SearchRequest`."""

    request: SearchRequest
    page: ResultPage
    page_info: PageInfo
    #: ranked item ids of this window (the pre-grouping order)
    items: tuple[Id, ...] = ()
    #: True when candidates came from the semantic index, not a scan
    index_used: bool = False
    #: resolved evaluation parameters (strategy, alpha, window)
    resolved: Mapping[str, Any] = field(default_factory=dict)
    #: the executed physical plan (only under ``request.explain=True``)
    plan: PlanExplain | None = None

    def __iter__(self) -> Iterator:
        """Iterate the window's ranked flat entries."""
        return iter(self.page.flat)

    @property
    def ok(self) -> bool:
        """True — the batch-outcome discriminator (see RequestFailure)."""
        return True

    @property
    def groups(self) -> list[ResultGroup]:
        """The page's ranked result groups."""
        return self.page.groups


@dataclass(frozen=True)
class RequestFailure:
    """One request's failure inside an error-isolating batch.

    ``Session.run_many(..., isolate_errors=True)`` returns one of these in
    place of the :class:`SearchResponse` whose evaluation raised, so a
    single malformed request (stale cursor, unknown strategy) cannot abort
    a batch it shares with unrelated tenants.  ``kind``/``message`` are
    the stable, serialisable identity of the failure; the original
    exception rides along for callers that re-raise (excluded from
    equality — two failures match when the same request failed the same
    way).
    """

    request: SearchRequest
    #: exception class name, e.g. ``"QueryError"``
    kind: str
    message: str
    error: Exception | None = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        """False — the batch-outcome discriminator (responses are truthy)."""
        return False

    def raise_(self) -> None:
        """Re-raise the original exception (or a reconstructed one)."""
        if self.error is not None:
            raise self.error
        raise QueryError(f"{self.kind}: {self.message}")


# ---------------------------------------------------------------------------
# Cursors: opaque, stateless continuation tokens
# ---------------------------------------------------------------------------


def encode_cursor(offset: int, page_size: int, epoch: int,
                  boot: int = 0) -> str:
    """Pack a continuation point into an opaque url-safe token.

    The *epoch* records the session's refresh generation at response time;
    the engine rejects cursors minted under an earlier generation (the
    ranking they point into no longer exists).  The *boot* token records
    the site incarnation (bumped on every restore from a snapshot): epoch
    counters restart across a crash, so without it a pre-crash cursor
    could alias a fresh epoch and silently page through a different
    ranking.  Boot 0 (a never-restored site) is omitted from the payload,
    keeping those tokens byte-identical to the pre-durability format.
    """
    payload_map: dict[str, int] = {"o": offset, "s": page_size, "e": epoch}
    if boot:
        payload_map["b"] = boot
    payload = json.dumps(payload_map, separators=(",", ":"))
    return base64.urlsafe_b64encode(payload.encode()).decode().rstrip("=")


def decode_cursor(cursor: str,
                  expected_boot: int | None = None) -> tuple[int, int, int]:
    """Unpack (offset, page_size, epoch); raises QueryError on junk.

    When *expected_boot* is given, a token minted by a different site
    incarnation raises :class:`~repro.errors.RestartCursorError` — the
    typed signal that the client must re-issue the query, not just
    re-page (plain epoch staleness stays a generic
    :class:`~repro.errors.QueryError`).
    """
    try:
        padded = cursor + "=" * (-len(cursor) % 4)
        payload = json.loads(base64.urlsafe_b64decode(padded.encode()))
        offset, size, epoch = payload["o"], payload["s"], payload["e"]
        boot = payload.get("b", 0)
    except Exception as exc:
        raise QueryError(f"malformed cursor {cursor!r}") from exc
    if not (isinstance(offset, int) and isinstance(size, int)
            and isinstance(epoch, int) and isinstance(boot, int)) \
            or offset < 0 or size <= 0:
        raise QueryError(f"malformed cursor {cursor!r}")
    if expected_boot is not None and boot != expected_boot:
        raise RestartCursorError(
            f"cursor was minted by site incarnation {boot}, but this is "
            f"incarnation {expected_boot} — the ranking it pages through "
            f"did not survive the restart; re-issue the query"
        )
    return offset, size, epoch


__all__ = [
    "SearchRequest",
    "SearchResponse",
    "RequestFailure",
    "PageInfo",
    "encode_cursor",
    "decode_cursor",
]

"""Unit tests for the SAF/NAF aggregate-function classes (Definitions 7-8)."""

from __future__ import annotations

import pytest

from repro.core import (
    Attr,
    AttrMap,
    ConstAgg,
    First,
    Link,
    Max,
    Min,
    NumericAgg,
    One,
    Prod,
    SetAgg,
    Sum,
    Zero,
    average,
    count,
    total,
)
from repro.core.aggfuncs import as_aggregate, link_values
from repro.errors import AggregationError


@pytest.fixture
def tag_links():
    return [
        Link("l1", "u1", "i1", type="tag", tags=("rock", "jazz"), w=2.0),
        Link("l2", "u1", "i2", type="tag", tags=("rock",), w=3.0),
        Link("l3", "u1", "i3", type="tag", tags=("folk",), w=5.0),
    ]


class TestSAF:
    def test_collects_distinct_values(self, tag_links):
        # "forms the set of all distinct tags assigned by the user"
        assert SetAgg("tags")(tag_links) == ("folk", "jazz", "rock")

    def test_multi_valued_binding(self, tag_links):
        # $x binds one value at a time on multi-valued attributes.
        assert "jazz" in SetAgg("tags")(tag_links)

    def test_pseudo_attribute_tgt(self, tag_links):
        assert SetAgg("tgt")(tag_links) == ("i1", "i2", "i3")

    def test_empty_input(self):
        assert SetAgg("tags")([]) == ()


class TestNAFConstruction:
    """The inductive class of Definition 8, checked piece by piece."""

    def test_constants(self, tag_links):
        assert Zero().eval(tag_links[0]) == 0.0
        assert One().eval("anything") == 1.0

    def test_count_is_sum_of_one(self, tag_links):
        # COUNT(X) ::= Σ_{x∈X} 1(x) — the paper's literal construction.
        assert NumericAgg(Sum(One()))(tag_links) == 3
        assert count()(tag_links) == 3

    def test_sum_over_attribute(self, tag_links):
        assert total("w")(tag_links) == 10.0

    def test_product(self, tag_links):
        assert NumericAgg(Prod(Attr("w")))(tag_links) == 30.0

    def test_arithmetic_closure(self, tag_links):
        avg = Sum(Attr("w")) / Sum(One())
        assert NumericAgg(avg)(tag_links) == pytest.approx(10 / 3)
        scaled = Sum(Attr("w")) * 2 + 1
        assert NumericAgg(scaled)(tag_links) == 21.0
        flipped = 1 - Sum(One())
        assert NumericAgg(flipped)(tag_links) == -2.0

    def test_composition_closure(self, tag_links):
        # (2x) ∘ Σw: double the sum via composition.
        doubler = Attr("__x") * 2  # works on scalars through Attr's passthrough
        composed = doubler.compose(Sum(Attr("w")))
        assert NumericAgg(composed)(tag_links) == 20.0

    def test_division_by_zero_is_zero(self):
        expr = Sum(One()) / Sum(Zero())
        assert NumericAgg(expr)([]) == 0.0

    def test_average_helper(self, tag_links):
        assert average("w")(tag_links) == pytest.approx(10 / 3)

    def test_sum_requires_collection(self):
        with pytest.raises(AggregationError):
            Sum(One()).eval(42)

    def test_attr_on_missing_uses_default(self, tag_links):
        assert NumericAgg(Sum(Attr("missing", default=1.0)))(tag_links) == 3.0


class TestDirectAF:
    def test_min_max(self, tag_links):
        assert Min("w")(tag_links) == 2.0
        assert Max("w")(tag_links) == 5.0

    def test_min_max_empty_default(self):
        assert Min("w", default=-1)([]) == -1
        assert Max("w", default=-1)([]) == -1

    def test_first_is_deterministic(self, tag_links):
        assert First("w")(tag_links) == 2.0  # smallest repr-ordered id: l1
        assert First("w")(list(reversed(tag_links))) == 2.0

    def test_first_empty_default(self):
        assert First("w", default="none")([]) == "none"

    def test_const_agg(self, tag_links):
        assert ConstAgg("match")(tag_links) == "match"

    def test_attr_map(self, tag_links):
        # Example 5 step 6's A′: type := 'match', sim := retained.
        result = AttrMap(type=ConstAgg("match"), w=First("w"))(tag_links)
        assert result == {"type": "match", "w": 2.0}

    def test_attr_map_requires_parts(self):
        with pytest.raises(AggregationError):
            AttrMap()

    def test_as_aggregate_coercions(self, tag_links):
        assert as_aggregate(Sum(One()))(tag_links) == 3
        assert as_aggregate(count())(tag_links) == 3
        assert as_aggregate(lambda links: len(links))(tag_links) == 3
        with pytest.raises(AggregationError):
            as_aggregate(42)

    def test_link_values_pseudo_attrs(self, tag_links):
        link = tag_links[0]
        assert link_values(link, "src") == ("u1",)
        assert link_values(link, "tgt") == ("i1",)
        assert link_values(link, "id") == ("l1",)
        assert link_values(link, "tags") == ("rock", "jazz")

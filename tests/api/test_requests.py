"""SearchRequest/SearchResponse value semantics, validation, cursors."""

from __future__ import annotations

import pytest

from repro.api import SearchRequest, decode_cursor, encode_cursor
from repro.core import Condition
from repro.errors import QueryError


class TestSearchRequestValues:
    def test_requests_are_frozen(self):
        request = SearchRequest(user_id=1, text="denver")
        with pytest.raises(AttributeError):
            request.text = "boston"

    def test_requests_hash_and_compare(self):
        a = SearchRequest(user_id=1, text="denver", k=5)
        b = SearchRequest(user_id=1, text="denver", k=5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.replace(k=6)

    def test_structural_mapping_coerced_to_condition(self):
        request = SearchRequest(user_id=1, structural={"type": "city"})
        assert isinstance(request.structural, Condition)

    def test_replace_revalidates(self):
        request = SearchRequest(user_id=1, text="denver")
        with pytest.raises(QueryError):
            request.replace(alpha=1.5)

    def test_next_page_clears_cursor(self):
        request = SearchRequest(user_id=1, page=2, cursor="abc")
        nxt = request.next_page()
        assert nxt.page == 3
        assert nxt.cursor is None

    def test_recommendation_detection(self):
        assert SearchRequest(user_id=1).is_recommendation
        assert not SearchRequest(user_id=1, text="x").is_recommendation
        assert not SearchRequest(
            user_id=1, structural={"type": "item"}
        ).is_recommendation


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(user_id=None),
        dict(user_id=1, alpha=-0.1),
        dict(user_id=1, alpha=1.1),
        dict(user_id=1, k=0),
        dict(user_id=1, k=-3),
        dict(user_id=1, page=0),
        dict(user_id=1, page_size=0),
    ])
    def test_bad_requests_rejected(self, bad):
        with pytest.raises(QueryError):
            SearchRequest(**bad)

    def test_boundary_alphas_accepted(self):
        assert SearchRequest(user_id=1, alpha=0.0).alpha == 0.0
        assert SearchRequest(user_id=1, alpha=1.0).alpha == 1.0


class TestCursors:
    def test_roundtrip(self):
        token = encode_cursor(40, 20, 3)
        assert decode_cursor(token) == (40, 20, 3)

    def test_opaque_urlsafe(self):
        token = encode_cursor(0, 10, 0)
        assert token.isprintable()
        assert "=" not in token and "+" not in token and "/" not in token

    @pytest.mark.parametrize("junk", ["", "not-a-cursor", "AAAA", "!!!"])
    def test_malformed_cursors_rejected(self, junk):
        with pytest.raises(QueryError):
            decode_cursor(junk)

    def test_bad_payload_values_rejected(self):
        import base64
        import json

        for payload in ({"o": -1, "s": 10, "e": 0}, {"o": 0, "s": 0, "e": 0},
                        {"o": "x", "s": 10, "e": 0}):
            token = base64.urlsafe_b64encode(
                json.dumps(payload).encode()
            ).decode().rstrip("=")
            with pytest.raises(QueryError):
                decode_cursor(token)

"""Tests for network-aware scores and the top-k algorithms (§6.2)."""

from __future__ import annotations

import random

import pytest

from repro.indexing import (
    TaggingData,
    brute_force,
    f_count,
    g_sum,
    no_random_access,
    threshold_algorithm,
)
from repro.workloads import TaggingSiteConfig, build_tagging_site


@pytest.fixture(scope="module")
def data():
    site = build_tagging_site(
        TaggingSiteConfig(num_users=80, num_items=160, num_tags=16, seed=5)
    )
    return TaggingData.from_graph(site.graph)


class TestTaggingData:
    def test_accessors_populated(self, data):
        assert data.users and data.item_ids and data.tag_vocab
        assert any(data.network.values())
        assert any(data.items.values())
        assert data.taggers

    def test_network_is_symmetric(self, data):
        for user, friends in data.network.items():
            for friend in friends:
                assert user in data.network.get(friend, set())

    def test_score_definition(self, data):
        # score_k(i,u) = |network(u) ∩ taggers(i,k)| with f=count
        user = data.users[0]
        (item, tag), taggers = next(iter(data.taggers.items()))
        expected = len(data.network[user] & taggers)
        assert data.score_tag(item, user, tag) == expected

    def test_score_sum_over_keywords(self, data):
        user = data.users[0]
        item = data.item_ids[0]
        kws = data.tag_vocab[:3]
        assert data.score(item, user, kws) == sum(
            data.score_tag(item, user, k) for k in kws
        )

    def test_zero_score_outside_network(self, data):
        # A user with no connections scores 0 everywhere.
        lonely = "lonely-user"
        assert data.score_tag(data.item_ids[0], lonely, data.tag_vocab[0]) == 0.0

    def test_brute_force_sorted_and_positive(self, data):
        user = data.users[3]
        result = data.brute_force_topk(user, data.tag_vocab[:2], 10)
        scores = [s for _, s in result]
        assert scores == sorted(scores, reverse=True)
        assert all(s > 0 for s in scores)


def _toy_lists():
    """Hand-built lists where TA can stop early."""
    l1 = [("a", 10.0), ("b", 8.0), ("c", 5.0), ("d", 1.0)]
    l2 = [("b", 9.0), ("a", 7.0), ("d", 2.0), ("c", 1.0)]
    maps = [dict(l1), dict(l2)]

    def ra(item, li):
        return maps[li].get(item, 0.0)

    return [l1, l2], ra


class TestThresholdAlgorithm:
    def test_matches_brute_force_on_toy(self):
        lists, ra = _toy_lists()
        ta, _ = threshold_algorithm(lists, ra, 2, g_sum)
        bf, _ = brute_force(lists, 2, g_sum)
        assert ta == bf == [("a", 17.0), ("b", 17.0)]

    def test_early_termination_saves_accesses(self):
        lists, ra = _toy_lists()
        _, ta_stats = threshold_algorithm(lists, ra, 1, g_sum)
        _, bf_stats = brute_force(lists, 1, g_sum)
        assert ta_stats.sorted_accesses < bf_stats.sorted_accesses

    def test_empty_lists(self):
        result, stats = threshold_algorithm([[], []], lambda i, l: 0.0, 3, g_sum)
        assert result == []

    def test_matches_brute_force_on_workload(self, data):
        rng = random.Random(1)
        from repro.indexing import ExactUserIndex

        index = ExactUserIndex(data)
        for _ in range(30):
            user = rng.choice(data.users)
            kws = rng.sample(data.tag_vocab, k=2)
            bf = data.brute_force_topk(user, kws, 5)
            ta, _ = index.query(user, kws, 5)
            # Tie-breaks at the boundary may differ; score sequences must not.
            assert [s for _, s in ta] == [s for _, s in bf]
            for item, score in ta:
                assert data.score(item, user, kws) == score


class TestNRA:
    def test_returns_correct_topk_set_on_toy(self):
        lists, _ = _toy_lists()
        nra, stats = no_random_access(lists, 2, g_sum)
        assert {i for i, _ in nra} == {"a", "b"}
        assert stats.random_accesses == 0

    def test_no_random_access_performed(self, data):
        from repro.indexing import ExactUserIndex

        index = ExactUserIndex(data)
        user = data.users[5]
        kws = data.tag_vocab[:2]
        lists = [index.lists.get((k, user), []) for k in kws]
        _, stats = no_random_access(lists, 5, g_sum)
        assert stats.random_accesses == 0

    def test_exact_scores_of_returned_items_match_brute_force(self, data):
        from repro.indexing import ExactUserIndex

        index = ExactUserIndex(data)
        rng = random.Random(2)
        for _ in range(20):
            user = rng.choice(data.users)
            kws = rng.sample(data.tag_vocab, k=2)
            lists = [index.lists.get((k, user), []) for k in kws]
            nra, _ = no_random_access(lists, 5, g_sum)
            bf, _ = brute_force(lists, 5, g_sum)
            # NRA guarantees the top-k *set* up to boundary ties: the exact
            # scores of its returned items must equal the brute-force score
            # sequence (reported NRA scores are lower bounds).
            nra_exact = sorted(
                (data.score(i, user, kws) for i, _ in nra), reverse=True
            )
            assert nra_exact == [s for _, s in bf]

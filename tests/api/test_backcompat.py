"""The facade keeps its historical signatures and returns pages identical
to the session API — and to a hand-wired (pre-session) pipeline."""

from __future__ import annotations

import pytest

from repro import SocialScope
from repro.api import SearchRequest, Session
from repro.discovery import InformationDiscoverer
from repro.presentation import InformationOrganizer
from repro.socialscope import SocialScopeConfig
from repro.workloads import ALEXIA, JOHN, SELMA, TravelSiteConfig, build_travel_site


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture(scope="module")
def scope(travel):
    return SocialScope.from_graph(travel.graph)


def assert_pages_identical(a, b):
    assert a.query_text == b.query_text
    assert a.user_id == b.user_id
    assert a.chosen_dimension == b.chosen_dimension
    assert [
        (g.label, g.dimension, [(e.item_id, e.score) for e in g.entries])
        for g in a.groups
    ] == [
        (g.label, g.dimension, [(e.item_id, e.score) for e in g.entries])
        for g in b.groups
    ]
    assert [e.item_id for e in a.flat] == [e.item_id for e in b.flat]


CASES = [
    (JOHN, "Denver attractions", None, None),
    (SELMA, "Barcelona family trip with babies", None, None),
    (ALEXIA, "history", None, None),
    (JOHN, "attractions", "similar_users", None),
    (JOHN, "Denver attractions", None, 5),
    (JOHN, "", None, 5),  # recommendation mode
]


class TestFacadeMatchesSessionAPI:
    @pytest.mark.parametrize("user_id,text,strategy,k", CASES)
    def test_search_equals_structured_run(self, scope, user_id, text,
                                          strategy, k):
        old_style = scope.search(user_id, text, strategy=strategy, k=k)
        response = scope.run(SearchRequest(
            user_id=user_id, text=text, strategy=strategy, k=k,
        ))
        assert_pages_identical(old_style, response.page)

    def test_search_equals_builder_run(self, scope):
        old_style = scope.search(JOHN, "Denver attractions", k=10)
        built = (scope.query(JOHN).text("Denver attractions")
                 .limit(10).run())
        assert_pages_identical(old_style, built.page)

    def test_recommend_is_empty_query(self, scope):
        assert_pages_identical(
            scope.recommend(JOHN, k=5),
            scope.query(JOHN).limit(5).run().page,
        )


class TestFacadeMatchesHandWiredPipeline:
    """The strongest guarantee: identical output to the pre-session path
    (fresh discoverer + organizer, scan-based candidates)."""

    @pytest.mark.parametrize("user_id,text,strategy,k", CASES)
    def test_identical_pages(self, travel, scope, user_id, text, strategy, k):
        discoverer = InformationDiscoverer(scope.graph)
        organizer = InformationOrganizer(scope.graph)
        msg = discoverer.discover(user_id, text, strategy=strategy, k=k)
        expected = organizer.organize(msg)
        actual = scope.search(user_id, text, strategy=strategy, k=k)
        assert_pages_identical(expected, actual)

    def test_discover_still_returns_msg(self, scope, travel):
        discoverer = InformationDiscoverer(scope.graph)
        expected = discoverer.discover(JOHN, "Denver attractions", k=7)
        actual = scope.discover(JOHN, "Denver attractions", k=7)
        assert actual.item_ids == expected.item_ids
        assert [round(s.combined, 9) for s in actual.items] == \
               [round(s.combined, 9) for s in expected.items]

    def test_explore_still_returns_presenter(self, scope):
        presenter = scope.explore(ALEXIA, "history")
        assert presenter.groups


class TestLegacySurface:
    def test_config_alias_and_auto_analyses(self, travel):
        scope = SocialScope.from_graph(
            travel.graph,
            SocialScopeConfig(auto_analyses=("item_similarity",)),
        )
        assert any(l.has_type("sim_item") for l in scope.graph.links())
        page = scope.search(JOHN, "attractions", strategy="item_based")
        assert page is not None

    def test_layer_attributes_still_reachable(self, scope):
        assert scope.discoverer is not None
        assert scope.organizer is not None
        assert scope.analyzer is not None
        assert scope.data_manager is not None

    def test_facade_is_warm_between_calls(self, travel):
        scope = SocialScope.from_graph(travel.graph)
        scope.search(JOHN, "Denver attractions")
        scope.search(JOHN, "museum")
        scope.recommend(JOHN)
        assert scope.session.stats.queries == 3
        assert scope.session.stats.tfidf_builds == 1

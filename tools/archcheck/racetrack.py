"""Eraser-style dynamic lockset race detection for the thread-storm tests.

Static lock-discipline linting (rule family C) proves what it can see;
this module checks the rest *at runtime*: wrap the locks a subsystem
creates, watch every field access on the objects under test, and keep
the classic Eraser lockset state machine per field —

    VIRGIN → EXCLUSIVE (one thread) → SHARED (second thread reads)
                                    → SHARED_MODIFIED (second thread writes)

In the shared states the candidate lockset is intersected with the
locks the accessing thread holds; if a SHARED_MODIFIED field's lockset
goes empty, no single lock consistently protected it — a data race,
regardless of whether this particular interleaving corrupted anything.

Usage (see ``tests/archcheck/test_racetrack.py``)::

    tracker = RaceTracker()
    with tracker.trace(repro.plan.cache, repro.plan.parallel):
        cache = SharedPlanCache(budget=8)   # gets TracedLock transparently
        tracker.monitor(cache)
        ...spawn the thread storm...
    tracker.assert_race_free()

``trace`` rebinds the name ``threading`` *inside the given modules only*
to a shim whose ``Lock()`` returns a :class:`TracedLock`; the rest of
the process keeps real locks.  Objects must be constructed inside the
``trace`` block for their locks to be traced.  Lock-valued fields,
dunders, and accesses after the block exits are excluded by design
(post-join assertions on the test thread would otherwise empty every
lockset).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"


class RaceError(AssertionError):
    """Raised by :meth:`RaceTracker.assert_race_free` when races were seen."""


class TracedLock:
    """A ``threading.Lock`` stand-in that reports holds to its tracker."""

    def __init__(self, tracker: "RaceTracker"):
        self._real = threading.Lock()
        self._tracker = tracker

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._real.acquire(blocking, timeout)
        if got:
            self._tracker._push(self)
        return got

    def release(self) -> None:
        self._tracker._pop(self)
        self._real.release()

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


class _ThreadingShim:
    """Module-scoped ``threading`` replacement: traced Lock, rest real."""

    def __init__(self, tracker: "RaceTracker"):
        self._tracker = tracker

    def Lock(self) -> TracedLock:  # noqa: N802 — mirrors threading.Lock
        return TracedLock(self._tracker)

    def __getattr__(self, name: str):
        return getattr(threading, name)


@dataclass
class _FieldState:
    label: str
    state: str = VIRGIN
    owner: int | None = None
    lockset: frozenset[int] = frozenset()
    reported: bool = False


@dataclass
class Race:
    label: str
    kind: str       #: "read" or "write" — the access that emptied the set
    thread: int

    def render(self) -> str:
        return (
            f"{self.label}: lockset went empty on a {self.kind} by thread "
            f"{self.thread} after the field was written by multiple "
            f"threads — no single lock consistently protects it"
        )


class RaceTracker:
    """Per-test lockset bookkeeping; one instance per traced scenario."""

    def __init__(self):
        self.active = False
        self.races: list[Race] = []
        self._fields: dict[tuple[int, str], _FieldState] = {}
        self._tls = threading.local()
        self._state_lock = threading.Lock()  # guards _fields/races
        self._traced_classes: dict[type, type] = {}

    # ---------------------------------------------------------- held locks
    def _held(self) -> set[int]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = set()
            self._tls.held = held
        return held

    def _push(self, lock: TracedLock) -> None:
        self._held().add(id(lock))

    def _pop(self, lock: TracedLock) -> None:
        self._held().discard(id(lock))

    # ------------------------------------------------------------- tracing
    @contextmanager
    def trace(self, *modules):
        """Trace lock creation in *modules* and record accesses until exit."""
        shim = _ThreadingShim(self)
        saved = []
        for module in modules:
            saved.append((module, getattr(module, "threading", None)))
            module.threading = shim
        self.active = True
        try:
            yield self
        finally:
            self.active = False
            for module, original in saved:
                if original is not None:
                    module.threading = original
                else:
                    del module.threading

    def monitor(self, obj) -> None:
        """Swap *obj*'s class for a traced subclass recording every access."""
        cls = type(obj)
        traced = self._traced_classes.get(cls)
        if traced is None:
            traced = _make_traced_class(cls, self)
            self._traced_classes[cls] = traced
        obj.__class__ = traced

    # ----------------------------------------------------- the state machine
    def record(self, obj, name: str, write: bool) -> None:
        if not self.active:
            return
        thread = threading.get_ident()
        locks = frozenset(self._held())
        key = (id(obj), name)
        with self._state_lock:
            fs = self._fields.get(key)
            if fs is None:
                fs = _FieldState(label=f"{type(obj).__name__}.{name}")
                self._fields[key] = fs
            if fs.state == VIRGIN:
                fs.state = EXCLUSIVE
                fs.owner = thread
                return
            if fs.state == EXCLUSIVE:
                if thread == fs.owner:
                    return
                fs.state = SHARED_MODIFIED if write else SHARED
                fs.lockset = locks
            else:
                if write and fs.state == SHARED:
                    fs.state = SHARED_MODIFIED
                fs.lockset &= locks
            if (
                fs.state == SHARED_MODIFIED
                and not fs.lockset
                and not fs.reported
            ):
                fs.reported = True
                self.races.append(Race(
                    label=fs.label,
                    kind="write" if write else "read",
                    thread=thread,
                ))

    # ------------------------------------------------------------- verdicts
    def assert_race_free(self) -> None:
        if self.races:
            raise RaceError(
                "lockset race(s) detected:\n  "
                + "\n  ".join(race.render() for race in self.races)
            )

    def field_states(self) -> dict[str, str]:
        """label → state, for test introspection."""
        return {fs.label: fs.state for fs in self._fields.values()}


def _is_tracked_field(obj, name: str, value) -> bool:
    """Instance data fields only: no dunders, no locks, no callables."""
    if name.startswith("__"):
        return False
    if name.endswith("_lock") or name == "_tracker":
        return False
    if isinstance(value, TracedLock):
        return False
    if callable(value) and not isinstance(value, (list, dict, set, tuple)):
        # bound methods / stored callables are read-only plumbing
        return False
    try:
        instance_dict = object.__getattribute__(obj, "__dict__")
    except AttributeError:
        return False
    return name in instance_dict


def _make_traced_class(cls: type, tracker: RaceTracker) -> type:
    """Subclass of *cls* whose attribute protocol reports to *tracker*."""

    def __getattribute__(self, name):
        value = object.__getattribute__(self, name)
        if tracker.active and _is_tracked_field(self, name, value):
            tracker.record(self, name, write=False)
        return value

    def __setattr__(self, name, value):
        object.__setattr__(self, name, value)
        if tracker.active and _is_tracked_field(self, name, value):
            tracker.record(self, name, write=True)

    # keep the original class name: field labels and reprs should read
    # as the object under test, not as detector plumbing
    return type(
        cls.__name__,
        (cls,),
        {
            "__getattribute__": __getattribute__,
            "__setattr__": __setattr__,
            "__module__": cls.__module__,
        },
    )

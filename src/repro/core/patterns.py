"""Graph patterns and pattern-based aggregation (paper §5.4, Figure 2).

    "Graph patterns make it possible to achieve these steps more concisely.
    Figure 2 depicts a graph pattern showing a 'match' link followed by a
    'visit' link.  [...]  The operator γL⟨GP,score,A⟩(G4 ∪ G5), where GP is
    the graph pattern in Figure 2, creates a new link between John and a
    destination node whenever the latter is reachable from John by a
    match-visit link path."

A :class:`PathPattern` is a start node condition followed by alternating
(link condition, direction, node condition) steps; Figure 2 is::

    PathPattern(
        start={'id': 101},
        steps=[
            Step(link={'type': 'match'}),
            Step(link={'type': 'visit'}, node={'type': 'destination'}),
        ],
    )

:func:`find_paths` enumerates all bindings; :func:`aggregate_pattern`
implements γL⟨GP,att,A⟩: matches are grouped by (start, end) node pair, one
new link is created per pair, and A aggregates over the group's *paths*
(so it can reach any link on the path — e.g. "the average value of sim_sc
on the match link").  The one-shot operator is equivalence-tested against
the paper's multi-step decomposition (compose + link-aggregate); the
difference in evaluation cost is the subject of the Figure 2 ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.aggfuncs import AggResult, Naf, NumericAgg
from repro.core.conditions import Condition, as_condition
from repro.core.graph import Id, Link, Node, SocialContentGraph
from repro.errors import PatternError


@dataclass(frozen=True)
class Step:
    """One hop of a path pattern: traverse a link, arrive at a node.

    ``direction='out'`` follows links src→tgt; ``'in'`` follows tgt→src.
    ``link``/``node`` are condition-likes (None means unconstrained — the
    paper's ``$2`` wildcard variables).
    """

    link: Any = None
    node: Any = None
    direction: str = "out"

    def __post_init__(self) -> None:
        if self.direction not in ("out", "in"):
            raise PatternError(f"step direction must be 'out'/'in', got {self.direction!r}")


@dataclass(frozen=True)
class PathMatch:
    """A binding of a path pattern: node and link records along the path."""

    nodes: tuple[Node, ...]
    links: tuple[Link, ...]

    @property
    def start(self) -> Node:
        """The node bound to the pattern's first variable."""
        return self.nodes[0]

    @property
    def end(self) -> Node:
        """The node bound to the pattern's last variable."""
        return self.nodes[-1]

    def link_value(self, index: int, att: str, default: float = 0.0) -> float:
        """Numeric attribute of the index-th link on the path."""
        value = self.links[index].value(att)
        if value is None:
            return default
        try:
            return float(value)
        except (TypeError, ValueError):
            return default


class PathPattern:
    """A linear graph pattern (the shape needed for Figure 2).

    General sub-graph patterns reduce to unions/joins of path patterns; the
    paper's own illustration is a path, and path patterns are what the
    pattern-vs-multistep ablation needs.
    """

    def __init__(self, start: Any = None, steps: Sequence[Step] = ()):
        self.start: Condition = as_condition(start)
        if not steps:
            raise PatternError("a path pattern needs at least one step")
        self.steps: tuple[Step, ...] = tuple(steps)
        self._step_conditions: list[tuple[Condition, Condition]] = [
            (as_condition(s.link), as_condition(s.node)) for s in steps
        ]

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        hops = " -> ".join(
            f"[{cond_l!r}]({s.direction})" for s, (cond_l, _) in zip(self.steps, self._step_conditions)
        )
        return f"PathPattern({self.start!r} {hops})"


def find_paths(graph: SocialContentGraph, pattern: PathPattern) -> list[PathMatch]:
    """Enumerate every binding of *pattern* in *graph*.

    Simple-path semantics are **not** imposed: the paper's patterns bind
    variables freely, so revisiting a node is allowed (patterns here are
    short, fixed-length paths, so there is no termination concern).
    Results are deterministically ordered by the bound ids.
    """
    matches: list[PathMatch] = []
    starts = [n for n in graph.nodes() if pattern.start.satisfied_by(n)]
    starts.sort(key=lambda n: repr(n.id))

    def extend(
        node: Node, depth: int, nodes: tuple[Node, ...], links: tuple[Link, ...]
    ) -> None:
        if depth == len(pattern.steps):
            matches.append(PathMatch(nodes, links))
            return
        step = pattern.steps[depth]
        link_cond, node_cond = pattern._step_conditions[depth]
        if step.direction == "out":
            candidates = graph.out_links(node.id)
        else:
            candidates = graph.in_links(node.id)
        ordered = sorted(candidates, key=lambda l: repr(l.id))
        for link in ordered:
            if not link_cond.satisfied_by(link):
                continue
            next_id = link.tgt if step.direction == "out" else link.src
            next_node = graph.node(next_id)
            if not node_cond.satisfied_by(next_node):
                continue
            extend(next_node, depth + 1, nodes + (next_node,), links + (link,))

    for start in starts:
        extend(start, 0, (start,), ())
    return matches


# ---------------------------------------------------------------------------
# Path aggregate functions
# ---------------------------------------------------------------------------

#: A path aggregation: maps a list of PathMatch to a scalar/tuple/mapping.
PathAgg = Callable[[Sequence[PathMatch]], AggResult]


class PathLinkAvg:
    """Average of a numeric attribute on the index-th link across paths.

    Figure 2's A: "the average value of sim_sc on the match link of the set
    of match-visit paths from John to the destination node" — that is
    ``PathLinkAvg(link_index=0, att='sim_sc')`` (the match link is hop 0).
    """

    def __init__(self, link_index: int, att: str, default: float = 0.0):
        self.link_index = link_index
        self.att = att
        self.default = default

    def __call__(self, paths: Sequence[PathMatch]) -> float:
        if not paths:
            return self.default
        total = sum(p.link_value(self.link_index, self.att, self.default) for p in paths)
        return total / len(paths)


class PathCount:
    """Number of pattern paths between the endpoint pair."""

    def __call__(self, paths: Sequence[PathMatch]) -> int:
        return len(paths)


class PathLinkSum:
    """Sum of a numeric attribute on the index-th link across paths."""

    def __init__(self, link_index: int, att: str, default: float = 0.0):
        self.link_index = link_index
        self.att = att
        self.default = default

    def __call__(self, paths: Sequence[PathMatch]) -> float:
        return sum(p.link_value(self.link_index, self.att, self.default) for p in paths)


class PathNaf:
    """Adapt a NAF expression to path groups via a per-path scalariser.

    ``PathNaf(Sum(One()))`` counts paths with the paper's own COUNT
    construction; ``PathNaf(Sum(...) / Sum(One()), extract)`` averages an
    arbitrary per-path value.
    """

    def __init__(self, expr: Naf, extract: Callable[[PathMatch], float] | None = None):
        self.expr = expr
        self.extract = extract

    def __call__(self, paths: Sequence[PathMatch]) -> float:
        if self.extract is None:
            values: Sequence[Any] = [1.0] * len(paths)
        else:
            values = [self.extract(p) for p in paths]
        return self.expr.eval(values)


def aggregate_pattern(
    graph: SocialContentGraph,
    pattern: PathPattern,
    att: str,
    agg: PathAgg,
    link_type: str = "agg",
    link_id_prefix: str | None = None,
) -> SocialContentGraph:
    """γL⟨GP,att,A⟩(G) — one-shot pattern aggregation (paper §5.4 end).

    Finds all pattern paths, groups them by (start-node, end-node), and for
    each group emits **one** new link start→end with ``att = A(paths)``.
    Output is the graph induced by the new links (plus their endpoints) —
    mirroring how the multi-step decomposition's final link aggregation
    leaves only the aggregated links of interest between those pairs.
    """
    prefix = link_id_prefix if link_id_prefix is not None else f"pagg:{att}"
    groups: dict[tuple[Id, Id], list[PathMatch]] = {}
    for match in find_paths(graph, pattern):
        groups.setdefault((match.start.id, match.end.id), []).append(match)

    out = SocialContentGraph(catalog=graph.catalog)
    for (src, tgt), paths in sorted(groups.items(), key=lambda kv: repr(kv[0])):
        result = agg(paths)
        attrs: dict[str, Any] = {}
        if isinstance(result, Mapping):
            attrs.update(result)
        else:
            attrs[att] = result
        attrs.setdefault("type", link_type)
        attrs.setdefault("agg_size", len(paths))
        if not out.has_node(src):
            out.add_node(graph.node(src))
        if not out.has_node(tgt):
            out.add_node(graph.node(tgt))
        out.add_link(Link(f"{prefix}:{src}->{tgt}", src, tgt, attrs))
    return out


def figure2_pattern(user_id: Id) -> PathPattern:
    """The exact pattern of the paper's Figure 2.

    ``$1 --type=match--> $2 --type=visit--> $3`` with ``$1`` bound to the
    querying user (id=101 in the paper) and ``$3`` constrained to
    destinations.
    """
    return PathPattern(
        start={"id": user_id},
        steps=[
            Step(link={"type": "match"}),
            Step(link={"type": "visit"}, node={"type": "destination"}),
        ],
    )

"""The three content-management models of paper §6.1 / Table 2.

    Decentralized: each content site solicits and stores its own profiles
    and connections.  Closed Cartel: the social site hosts everything;
    content sites are reduced to applications inside it.  Open Cartel:
    social sites keep the social graph but content sites pull (and push
    back) through open standards.

Each model is a small simulation driver over the same scenario — a set of
users with one "true" friendship graph, one social site, and N content
sites — so Table 2's qualitative rows can be *measured*:

* how many times users had to create profiles / re-establish connections,
* which site a user interacts with,
* who controls content / social graph / activities (capability flags
  derived from what the simulated parties can actually do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core import Id, Link, Node
from repro.management.integrator import ContentIntegrator
from repro.management.remote import (
    ALL_SCOPES,
    RemoteSocialSite,
    SCOPE_ACTIVITIES,
    SCOPE_CONNECTIONS,
    SCOPE_PROFILE,
    SCOPE_WRITE,
)
from repro.management.storage import GraphStore


@dataclass
class Scenario:
    """The world both models are run against."""

    users: list[Id]
    friendships: list[tuple[Id, Id]]
    content_sites: tuple[str, ...] = ("travel", "news", "photos")


@dataclass
class ModelOutcome:
    """Measured + capability results for one management model (Table 2 row)."""

    model: str
    #: where the user goes to consume content
    interaction_point: str
    #: total profiles users had to create across all sites
    profiles_created: int
    #: total times the same connection was re-established somewhere
    duplicate_connections: int
    #: Table 2 capability flags
    content_site_controls_content: str
    content_site_controls_social: str
    content_site_controls_activities: str
    social_site_controls_content: str
    social_site_controls_social: str
    social_site_controls_activities: str
    #: can the content site run graph analyses locally?
    content_site_can_analyze: bool
    api_reads: int = 0
    api_writes: int = 0
    details: dict = field(default_factory=dict)


def _activity_script(users: Sequence[Id]) -> list[tuple[Id, str, str]]:
    """A fixed per-user activity script (verb, item) so models are comparable."""
    script = []
    for user in users:
        script.append((user, "visit", f"item:{user}:a"))
        script.append((user, "tag", f"item:{user}:b"))
    return script


def run_decentralized(scenario: Scenario) -> ModelOutcome:
    """Decentralized Model: every content site solicits its own social data.

    Users create a profile and re-add their friends *on every site*; each
    site has full control and full analysis capability over its own copy.
    """
    stores = {name: GraphStore() for name in scenario.content_sites}
    profiles = 0
    duplicate_connections = 0
    for name, store in stores.items():
        for user in scenario.users:
            store.upsert_node(Node(user, type="user", name=f"user{user}"))
            profiles += 1
        for a, b in scenario.friendships:
            store.upsert_link(Link(f"fr:{a}->{b}", a, b, type="connect, friend"))
            store.upsert_link(Link(f"fr:{b}->{a}", b, a, type="connect, friend"))
            duplicate_connections += 1
        for user, verb, item in _activity_script(scenario.users):
            store.upsert_node(Node(item, type="item", name=item))
            store.upsert_link(
                Link(f"act:{user}:{item}", user, item, type=f"act, {verb}")
            )
    # Duplicates = re-creations beyond the first site.
    n_sites = len(scenario.content_sites)
    return ModelOutcome(
        model="decentralized",
        interaction_point="content site",
        profiles_created=profiles,
        duplicate_connections=(n_sites - 1) * len(scenario.friendships),
        content_site_controls_content="yes",
        content_site_controls_social="yes",
        content_site_controls_activities="yes",
        social_site_controls_content="no",
        social_site_controls_social="no",
        social_site_controls_activities="no",
        content_site_can_analyze=True,
        details={"stores": {n: (s.num_nodes, s.num_links)
                            for n, s in stores.items()}},
    )


def run_closed_cartel(scenario: Scenario) -> ModelOutcome:
    """Closed Cartel: the social site hosts; content sites become apps.

    Users keep ONE profile (on the social site).  Content is delivered
    through the host: the content "apps" see only what the host's app API
    exposes per request and retain no local store — hence no local
    analysis capability.
    """
    social = RemoteSocialSite("social-hub")
    for user in scenario.users:
        social.register_user(user, f"user{user}")
    for a, b in scenario.friendships:
        social.connect(a, b)
    # Apps run inside the host: activities land in the host's stream.
    for user, verb, item in _activity_script(scenario.users):
        social.record_activity(user, verb, item)
    return ModelOutcome(
        model="closed_cartel",
        interaction_point="social site",
        profiles_created=len(scenario.users),
        duplicate_connections=0,
        content_site_controls_content="limited",
        content_site_controls_social="no",
        content_site_controls_activities="no",
        social_site_controls_content="limited",
        social_site_controls_social="yes",
        social_site_controls_activities="yes",
        content_site_can_analyze=False,
        api_reads=social.calls.reads,
        api_writes=social.calls.writes,
        details={"host_users": social.num_users},
    )


def run_open_cartel(scenario: Scenario) -> ModelOutcome:
    """Open Cartel: social site keeps the graph; content sites integrate.

    Users keep one profile on the social site and grant each content site
    access; content sites pull the social graph through the open API into
    local stores (full local analysis over a focused view) and push
    locally-created connections back.
    """
    social = RemoteSocialSite("social-hub")
    for user in scenario.users:
        social.register_user(user, f"user{user}")
    for a, b in scenario.friendships:
        social.connect(a, b)

    stores: dict[str, GraphStore] = {}
    for name in scenario.content_sites:
        store = GraphStore()
        integrator = ContentIntegrator(store, client_name=name)
        for user in scenario.users:
            social.grant(user, name, set(ALL_SCOPES))
        integrator.import_all(social)
        # Site-specific activities stay under the content site's control...
        for user, verb, item in _activity_script(scenario.users):
            store.upsert_node(Node(item, type="item", name=item))
            store.upsert_link(
                Link(f"act:{user}:{item}", user, item, type=f"act, {verb}")
            )
        stores[name] = store
    # ...and one site creates a new connection locally and writes it back.
    first = scenario.content_sites[0]
    integrator = ContentIntegrator(stores[first], client_name=first)
    if len(scenario.users) >= 2:
        a, b = scenario.users[0], scenario.users[-1]
        integrator.push_connection(social, a, b)

    return ModelOutcome(
        model="open_cartel",
        interaction_point="content site",
        profiles_created=len(scenario.users),
        duplicate_connections=0,
        content_site_controls_content="yes",
        content_site_controls_social="limited",
        content_site_controls_activities="yes",
        social_site_controls_content="no",
        social_site_controls_social="yes",
        social_site_controls_activities="limited",
        content_site_can_analyze=True,
        api_reads=social.calls.reads,
        api_writes=social.calls.writes,
        details={"stores": {n: (s.num_nodes, s.num_links)
                            for n, s in stores.items()}},
    )


def run_all_models(scenario: Scenario) -> list[ModelOutcome]:
    """Run the three models on the same scenario (Table 2 regeneration)."""
    return [
        run_decentralized(scenario),
        run_closed_cartel(scenario),
        run_open_cartel(scenario),
    ]

"""L004 violation: a restricted import outside its owning module."""

import multiprocessing


def spawn_context():
    return multiprocessing.get_context("spawn")

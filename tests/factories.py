"""Shared graph factories for the test suite.

Graph-building helpers that used to be duplicated across per-module
setups live here once: the smoke-test travel graph, plain item
populations for plan/cache tests, the controlled-selectivity corpus the
access-path tests sweep, and a small social site with every signal the
social-stage strategies read (connections, activities, derived
similarity).  Test modules import them directly (``tests`` is on the
pytest ``pythonpath``); the root conftest re-exports the fixtures.
"""

from __future__ import annotations

from repro.core import Link, Node, SocialContentGraph


def tiny_travel_graph() -> SocialContentGraph:
    """The smoke-test graph used throughout the core tests.

    John(101) plus Ann/Bob/Cat, four destinations, visit activities and a
    couple of friend links.  Jaccard similarities with John's visit set
    {d1, d3}: Ann 2/3, Bob 1/4, Cat 1.
    """
    g = SocialContentGraph()
    for uid, name in [(101, "John"), (102, "Ann"), (103, "Bob"), (104, "Cat")]:
        g.add_node(Node(uid, type="user", name=name))
    destinations = [
        ("d1", "Coors Field", "baseball stadium"),
        ("d2", "Ballpark Museum", "baseball museum"),
        ("d3", "Denver Aquarium", "family aquarium"),
        ("d4", "Denver Zoo", "family zoo"),
    ]
    for did, name, keywords in destinations:
        g.add_node(Node(did, type="item, destination", name=name, keywords=keywords))
    visits = [
        (101, "d1"), (101, "d3"),
        (102, "d1"), (102, "d3"), (102, "d2"),
        (103, "d1"), (103, "d2"), (103, "d4"),
        (104, "d3"), (104, "d1"),
    ]
    for i, (u, d) in enumerate(visits):
        g.add_link(Link(f"v{i}", u, d, type="act, visit"))
    g.add_link(Link("f1", 101, 102, type="connect, friend"))
    g.add_link(Link("f2", 101, 103, type="connect, friend"))
    g.add_link(Link("f3", 102, 104, type="connect, friend"))
    return g


def item_graph(n: int = 6) -> SocialContentGraph:
    """A null graph of *n* plain items (plan-cache and aliasing tests)."""
    g = SocialContentGraph()
    for i in range(n):
        g.add_node(Node(i, type="item", name=f"spot {i}"))
    return g


def selectivity_graph(
    num_items: int = 40,
    rare_count: int = 3,
    rare_term: str = "rare",
    common_term: str = "common",
) -> SocialContentGraph:
    """Items all mentioning *common_term*; only a few carry *rare_term*.

    The corpus the scan-vs-index access-path tests sweep: term
    selectivity is exactly controllable, so the cost model's crossover is
    observable.
    """
    g = SocialContentGraph()
    for i in range(num_items):
        text = f"{common_term} everywhere" + (
            f" {rare_term} gem" if i < rare_count else ""
        )
        g.add_node(Node(i, type="item", name=f"spot {i}", keywords=text))
    return g


def social_site_graph(
    num_users: int = 6,
    num_items: int = 8,
    friends_per_user: int = 2,
    acts_per_user: int = 3,
    with_sim_links: bool = True,
) -> SocialContentGraph:
    """A small deterministic social site with every strategy's signal.

    Users form a friendship ring (each follows the next
    *friends_per_user* users), act on a rotating window of items, and —
    when *with_sim_links* — consecutive items carry derived ``sim_item``
    links, so friend-based, similar-user and item-based scoring all have
    material to work with.
    """
    g = SocialContentGraph()
    for u in range(num_users):
        g.add_node(Node(f"u{u}", type="user", name=f"user {u}"))
    for i in range(num_items):
        g.add_node(Node(
            f"i{i}", type="item", name=f"item {i}",
            keywords=f"topic{i % 3} thing",
        ))
    link_id = 0
    for u in range(num_users):
        for step in range(1, friends_per_user + 1):
            g.add_link(Link(
                f"c{link_id}", f"u{u}", f"u{(u + step) % num_users}",
                type="connect, friend",
            ))
            link_id += 1
        for step in range(acts_per_user):
            g.add_link(Link(
                f"a{link_id}", f"u{u}", f"i{(u + step) % num_items}",
                type="act, visit",
            ))
            link_id += 1
    if with_sim_links:
        for i in range(num_items - 1):
            g.add_link(Link(
                f"s{i}", f"i{i}", f"i{i + 1}", type="sim_item",
                sim=round(0.2 + 0.1 * (i % 5), 3), derived_by="factory",
            ))
    return g

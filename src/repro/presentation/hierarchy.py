"""Hierarchical group presentation with zoom-in / zoom-out (paper §7.1).

    "an interesting presentational alternative is to present the groups
    hierarchically, i.e., initially present a small number of groups
    appropriate for the screen area and upon request divide a group that
    the user is interested in into subgroups.  Devising a grouping
    mechanism that dynamically adjusts with zoom-in and zoom-out requests
    is a promising presentation model."

:class:`HierarchicalPresenter` keeps a stack of (grouping, focus) frames:
``zoom_in(group)`` re-groups the focused group's items along the next-best
dimension; ``zoom_out`` pops back.  Dimension choice at every level reuses
§7.1 meaningfulness, so the hierarchy adapts to what actually splits the
focused subset well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core import Id
from repro.discovery.msg import MeaningfulSocialGraph, ScoredItem
from repro.errors import PresentationError
from repro.presentation.grouping import Group, GroupingResult
from repro.presentation.meaningful import MeaningfulnessWeights, choose_grouping

#: A grouping factory: builds a GroupingResult for a (sub-)MSG.
GroupingFactory = Callable[[MeaningfulSocialGraph], GroupingResult]


def restrict_msg(
    msg: MeaningfulSocialGraph, items: Sequence[Id]
) -> MeaningfulSocialGraph:
    """A sub-MSG over a subset of result items (graph reused, items cut)."""
    keep = set(items)
    return MeaningfulSocialGraph(
        graph=msg.graph,
        query=msg.query,
        items=[s for s in msg.items if s.item_id in keep],
        social=msg.social,
        used_expert_fallback=msg.used_expert_fallback,
    )


@dataclass
class Frame:
    """One level of the zoom stack."""

    msg: MeaningfulSocialGraph
    grouping: GroupingResult
    focus_label: str


class HierarchicalPresenter:
    """Zoomable group hierarchy over one discovery result."""

    def __init__(
        self,
        msg: MeaningfulSocialGraph,
        factories: dict[str, GroupingFactory],
        weights: MeaningfulnessWeights | None = None,
    ):
        if not factories:
            raise PresentationError("need at least one grouping factory")
        self.factories = factories
        self.weights = weights or MeaningfulnessWeights()
        self._stack: list[Frame] = []
        root_grouping, _ = self._best_grouping(msg, exclude=set())
        self._stack.append(Frame(msg=msg, grouping=root_grouping,
                                 focus_label="all results"))

    def _best_grouping(
        self, msg: MeaningfulSocialGraph, exclude: set[str]
    ) -> tuple[GroupingResult, dict[str, float]]:
        candidates = [
            factory(msg)
            for name, factory in sorted(self.factories.items())
            if name not in exclude
        ]
        if not candidates:
            raise PresentationError("no remaining grouping dimensions")
        return choose_grouping(candidates, msg, self.weights)

    # ----------------------------------------------------------------- state
    @property
    def depth(self) -> int:
        """Current zoom depth (1 = root)."""
        return len(self._stack)

    @property
    def current(self) -> Frame:
        """The frame currently displayed."""
        return self._stack[-1]

    @property
    def groups(self) -> list[Group]:
        """Groups at the current level."""
        return self.current.grouping.groups

    @property
    def breadcrumbs(self) -> list[str]:
        """Labels from root to the current focus."""
        return [frame.focus_label for frame in self._stack]

    # ------------------------------------------------------------------ zoom
    def zoom_in(self, group_label: str) -> Frame:
        """Divide the named group into subgroups along the next dimension.

        The dimension already used at this level is excluded, so zooming
        always reveals a *different* organisation of the subset.
        """
        group = next(
            (g for g in self.groups if g.label == group_label), None
        )
        if group is None:
            raise PresentationError(f"no group labelled {group_label!r}")
        sub_msg = restrict_msg(self.current.msg, group.items)
        used_dimensions = {
            frame.grouping.dimension.split(":")[0] for frame in self._stack
        }
        exclude = {
            name
            for name in self.factories
            if name.split(":")[0] in used_dimensions
        }
        if len(exclude) >= len(self.factories):
            exclude = set()  # all used: allow reuse rather than fail
        grouping, _ = self._best_grouping(sub_msg, exclude)
        frame = Frame(msg=sub_msg, grouping=grouping, focus_label=group_label)
        self._stack.append(frame)
        return frame

    def zoom_out(self) -> Frame:
        """Pop back one level (no-op at the root)."""
        if len(self._stack) > 1:
            self._stack.pop()
        return self.current

"""archcheck self-tests: each rule family fires on its violation fixture
and stays silent on the clean tree.

The fixtures live under ``fixtures/<case>/app/...`` — tiny source trees
with exactly the violations their docstrings name.  A linter whose
rules can't demonstrably fire is worse than no linter: it reports
"clean" forever.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from tools.archcheck.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from tools.archcheck.config import Config, load_config
from tools.archcheck.findings import collect_modules
from tools.archcheck.runner import RULE_FAMILIES, run_rules

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def fixture_config() -> Config:
    return Config(
        layer_root="app",
        layers={
            "core": (),
            "plan": ("core",),
            "serve": ("core",),
            "testing": ("core",),
        },
        determinism_strict=("plan",),
        rng_allowlist={},
        purity_modules=("plan.columnar",),
    )


def run_on(case: str, *families: str):
    root = FIXTURES / case
    modules = collect_modules(root, root, layer_root="app")
    assert modules, f"fixture {case!r} collected no modules"
    return run_rules(modules, fixture_config(), families)


def rules_of(findings) -> set[str]:
    return {finding.rule for finding in findings}


class TestLayering:
    def test_upward_import_cycle_and_undeclared_package_fire(self):
        findings = run_on("layering", "layering")
        assert rules_of(findings) == {"L001", "L002", "L003"}
        upward = next(f for f in findings if f.rule == "L001")
        assert upward.symbol == "core->plan"
        cycle = next(f for f in findings if f.rule == "L002")
        assert "core" in cycle.message and "plan" in cycle.message

    def test_allowed_downward_edge_is_silent(self):
        findings = run_on("layering", "layering")
        assert not any(
            f.rule == "L001" and f.symbol == "plan->core" for f in findings
        )


class TestRestrictedImports:
    def test_multiprocessing_outside_its_owner_fires(self):
        findings = run_on("restricted", "layering")
        l004 = [f for f in findings if f.rule == "L004"]
        assert {f.symbol for f in l004} == {"core->multiprocessing"}
        assert "plan.parallel" in l004[0].message

    def test_owning_module_is_silent(self):
        findings = run_on("restricted", "layering")
        assert not any(
            f.rule == "L004" and f.path.endswith("parallel.py")
            for f in findings
        )

    def test_submodules_of_the_prefix_are_covered(self):
        import ast

        from tools.archcheck.findings import Module
        from tools.archcheck.layering import check_layering

        tree = ast.parse("from multiprocessing.shared_memory "
                         "import SharedMemory\n")
        module = Module(path=Path("serve/gateway.py"),
                        rel_path="serve/gateway.py",
                        name="serve.gateway", tree=tree)
        findings = check_layering([module], fixture_config())
        assert any(f.rule == "L004" for f in findings)


class TestTestOnlyImports:
    def test_production_import_of_test_only_package_fires(self):
        findings = run_on("testonly", "layering")
        t001 = [f for f in findings if f.rule == "T001"]
        assert {f.symbol for f in t001} == {"serve->testing"}
        assert "fault handlers" in t001[0].message

    def test_test_only_package_may_import_itself_and_core(self):
        findings = run_on("testonly", "layering")
        assert not any(
            f.rule == "T001" and "/testing/" in f.path.replace("\\", "/")
            for f in findings
        )

    def test_disabled_when_no_test_only_packages_declared(self):
        root = FIXTURES / "testonly"
        modules = collect_modules(root, root, layer_root="app")
        config = fixture_config()
        config.test_only_packages = ()
        findings = run_rules(modules, config, ("layering",))
        assert not any(f.rule == "T001" for f in findings)


class TestConcurrency:
    def test_locked_suffix_call_without_lock_fires(self):
        findings = run_on("concurrency", "concurrency")
        c001 = [f for f in findings if f.rule == "C001"]
        assert len(c001) == 1
        assert c001[0].symbol == "Cache.drop"
        assert "self._drop_locked" in c001[0].detail

    def test_unguarded_write_to_guarded_attribute_fires(self):
        findings = run_on("concurrency", "concurrency")
        c003 = [f for f in findings if f.rule == "C003"]
        assert len(c003) == 1
        assert c003[0].symbol == "Cache.reset"
        assert c003[0].detail == "hits"

    def test_lock_order_inversion_fires(self):
        findings = run_on("concurrency", "concurrency")
        c002 = [f for f in findings if f.rule == "C002"]
        assert len(c002) == 1
        assert "a_lock" in c002[0].detail and "b_lock" in c002[0].detail

    def test_locked_writes_under_lock_are_silent(self):
        # get/put mutate hits/entries under the lock; only reset fires
        findings = run_on("concurrency", "concurrency")
        assert not any(
            f.symbol in ("Cache.get", "Cache.put") for f in findings
        )


class TestDeterminism:
    def test_wall_clock_rng_and_id_key_fire(self):
        findings = run_on("determinism", "determinism")
        assert rules_of(findings) == {"D001", "D002", "D003"}
        by_rule = {f.rule: f for f in findings}
        assert by_rule["D001"].detail == "time.time"
        assert by_rule["D002"].detail == "random.random"
        assert by_rule["D003"].symbol == "plan_key"

    def test_monotonic_clock_is_silent(self):
        findings = run_on("determinism", "determinism")
        assert not any(f.symbol == "profiled" for f in findings)


class TestPurity:
    def test_input_graph_mutation_fires(self):
        findings = run_on("purity", "purity")
        assert rules_of(findings) == {"P001"}
        assert len(findings) == 1
        assert findings[0].symbol == "scatter"
        assert findings[0].detail == "graph.add_node"

    def test_fresh_local_graph_is_silent(self):
        findings = run_on("purity", "purity")
        assert not any(f.symbol == "materialize" for f in findings)


class TestCleanFixture:
    def test_every_family_is_silent(self):
        findings = run_on("clean", *RULE_FAMILIES)
        assert findings == []


class TestBaseline:
    def test_matching_entry_suppresses_and_stale_entry_surfaces(self):
        findings = run_on("purity", "purity")
        entries = [
            BaselineEntry(
                fingerprint=findings[0].fingerprint(),
                reason="fixture: known mutation",
            ),
            BaselineEntry(
                fingerprint="P001:gone.py:nobody:nothing",
                reason="fixture: paid-off debt",
            ),
        ]
        active, suppressed, stale = apply_baseline(findings, entries)
        assert active == []
        assert suppressed == findings
        assert [entry.fingerprint for entry in stale] == [
            "P001:gone.py:nobody:nothing"
        ]

    def test_reasonless_entries_are_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            '{"suppressions": [{"fingerprint": "X:y:z:", "reason": " "}]}',
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="no reason"):
            load_baseline(path)

    def test_repo_baseline_is_loadable_and_justified(self):
        entries = load_baseline(
            REPO_ROOT / "tools" / "archcheck" / "baseline.json"
        )
        assert all(entry.reason.strip() for entry in entries)
        # the ratchet only holds if every entry is a D003 key-identity
        # grandfather — anything else must be fixed, not baselined
        assert all(
            entry.fingerprint.startswith("D003:") for entry in entries
        )


class TestRepoTree:
    """The real src/ tree passes archcheck end to end (CI runs the same)."""

    def test_cli_is_green_on_src(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.archcheck", "src/"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_cli_rejects_unknown_rule_family(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.archcheck", "src/",
             "--rules", "astrology"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2
        assert "astrology" in result.stderr

    def test_observed_layering_matches_declared_dag(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        modules = collect_modules(
            REPO_ROOT / "src", REPO_ROOT, layer_root=config.layer_root
        )
        findings = run_rules(modules, config, ("layering",))
        assert findings == [], [f.render() for f in findings]

"""The Content Analyzer component (paper §3, Information Discovery layer).

    "The Content Analyzer derives new nodes (e.g., topics) and links (e.g.,
    similarities between users) through various analyses ... of the raw
    social content graph in an off-line fashion.  Those analyses can be
    specified and triggered automatically by the system itself or by a
    Social Content Administrator."

:class:`ContentAnalyzer` is a registry of named analyses.  Each analysis is
a pure function ``graph -> derived graph``; running one unions the derived
nodes/links into the working graph (so everything stays expressible in the
algebra — derivation is just ∪ with a computed graph).  A run log records
what was derived when, which the Data Manager's refresh logic can consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.association import mine_rules, transactions_from_graph
from repro.analysis.similarity import (
    item_similarity_links,
    user_similarity_links,
)
from repro.analysis.topics import derive_topics
from repro.core import Link, SocialContentGraph, union
from repro.errors import DiscoveryError

#: An analysis: consumes the current graph, returns a graph of derived
#: nodes/links to be unioned in.
Analysis = Callable[[SocialContentGraph], SocialContentGraph]


@dataclass
class AnalysisRun:
    """One entry of the analyzer's run log."""

    name: str
    derived_nodes: int
    derived_links: int


def _association_analysis(
    min_support: float = 0.05, min_confidence: float = 0.5
) -> Analysis:
    """Analysis deriving item→item ``match, assoc`` links from mined rules.

    Only single-item antecedent/consequent rules become links (a link has
    exactly two endpoints); larger rules would require hyper-edges, which
    the paper's model does not include.
    """

    def run(graph: SocialContentGraph) -> SocialContentGraph:
        transactions = transactions_from_graph(graph)
        rules = mine_rules(transactions, min_support=min_support,
                           min_confidence=min_confidence, max_size=2)
        out = SocialContentGraph(catalog=graph.catalog)
        for rule in rules:
            if len(rule.antecedent) != 1 or len(rule.consequent) != 1:
                continue
            (src,) = rule.antecedent
            (tgt,) = rule.consequent
            if not (graph.has_node(src) and graph.has_node(tgt)):
                continue
            for node_id in (src, tgt):
                if not out.has_node(node_id):
                    out.add_node(graph.node(node_id))
            out.add_link(Link(
                f"assoc:{src}->{tgt}", src, tgt,
                type="match, assoc",
                confidence=round(rule.confidence, 6),
                support=round(rule.support, 6),
                lift=round(rule.lift, 6),
                derived_by="association_rules",
            ))
        return out

    return run


class ContentAnalyzer:
    """Registry + runner for offline content analyses."""

    def __init__(self, graph: SocialContentGraph):
        self.graph = graph
        self.run_log: list[AnalysisRun] = []
        self._analyses: dict[str, Analysis] = {}
        # Built-in analyses (the two the paper names + similarity links).
        self.register("topics", lambda g: derive_topics(g).graph)
        self.register("user_similarity",
                      lambda g: user_similarity_links(g, basis="items"))
        self.register("network_similarity",
                      lambda g: user_similarity_links(g, basis="network"))
        self.register("item_similarity", item_similarity_links)
        self.register("association_rules", _association_analysis())

    def register(self, name: str, analysis: Analysis) -> None:
        """Register (or replace) an analysis under *name*.

        This is the Social Content Administrator's hook: any callable
        producing a derived graph participates on equal footing with the
        built-ins.
        """
        self._analyses[name] = analysis

    @property
    def available(self) -> list[str]:
        """Names of registered analyses."""
        return sorted(self._analyses)

    def run(self, name: str) -> AnalysisRun:
        """Run one analysis and union its derivations into the graph."""
        analysis = self._analyses.get(name)
        if analysis is None:
            raise DiscoveryError(
                f"unknown analysis {name!r}; available: {self.available}"
            )
        derived = analysis(self.graph)
        self.graph = union(self.graph, derived)
        entry = AnalysisRun(
            name=name,
            derived_nodes=derived.num_nodes,
            derived_links=derived.num_links,
        )
        self.run_log.append(entry)
        return entry

    def run_all(self, names: list[str] | None = None) -> list[AnalysisRun]:
        """Run several analyses in order (default: all registered)."""
        return [self.run(name) for name in (names or self.available)]

"""Experiment T2 — regenerate Table 2 (the three content-management models).

The paper's Table 2 is qualitative; here each cell is *measured* from the
model simulations (profile duplication counts, API call accounting, and
capability flags derived from what each simulated party can actually do).
The timed rows benchmark a full simulation run per model.
"""

from __future__ import annotations

import pytest

from repro.management import (
    Scenario,
    run_all_models,
    run_closed_cartel,
    run_decentralized,
    run_open_cartel,
)


@pytest.fixture(scope="module")
def scenario():
    users = list(range(1, 301))
    friendships = [(i, i + 1) for i in range(1, 300)]
    friendships += [(i, i + 50) for i in range(1, 250, 25)]
    return Scenario(users=users, friendships=friendships,
                    content_sites=("travel", "news", "photos"))


def test_table2_grid(scenario, report, benchmark):
    results = benchmark.pedantic(run_all_models, args=(scenario,),
                                 rounds=1, iterations=1)
    outcomes = {o.model: o for o in results}
    d, c, o = (outcomes["decentralized"], outcomes["closed_cartel"],
               outcomes["open_cartel"])

    report(
        "",
        "=== Table 2: three content-management models (measured) ===",
        f"{'factor':<42}{'Decentralized':>15}{'Closed Cartel':>15}{'Open Cartel':>13}",
        f"{'-'*85}",
        (f"{'Users: which site to interact with?':<42}"
         f"{d.interaction_point:>15}{c.interaction_point:>15}{o.interaction_point:>13}"),
        (f"{'Users: multiple same connections/profiles?':<42}"
         f"{'yes':>15}{'no':>15}{'no':>13}"),
        (f"{'  measured: profiles created':<42}"
         f"{d.profiles_created:>15}{c.profiles_created:>15}{o.profiles_created:>13}"),
        (f"{'  measured: duplicated connections':<42}"
         f"{d.duplicate_connections:>15}{c.duplicate_connections:>15}{o.duplicate_connections:>13}"),
        (f"{'Content site: control over content':<42}"
         f"{d.content_site_controls_content:>15}{c.content_site_controls_content:>15}{o.content_site_controls_content:>13}"),
        (f"{'Content site: control over social graph':<42}"
         f"{d.content_site_controls_social:>15}{c.content_site_controls_social:>15}{o.content_site_controls_social:>13}"),
        (f"{'Content site: control over activities':<42}"
         f"{d.content_site_controls_activities:>15}{c.content_site_controls_activities:>15}{o.content_site_controls_activities:>13}"),
        (f"{'Social site: control over content':<42}"
         f"{d.social_site_controls_content:>15}{c.social_site_controls_content:>15}{o.social_site_controls_content:>13}"),
        (f"{'Social site: control over social graph':<42}"
         f"{d.social_site_controls_social:>15}{c.social_site_controls_social:>15}{o.social_site_controls_social:>13}"),
        (f"{'Social site: control over activities':<42}"
         f"{d.social_site_controls_activities:>15}{c.social_site_controls_activities:>15}{o.social_site_controls_activities:>13}"),
        (f"{'  measured: social-site API reads/writes':<42}"
         f"{f'{d.api_reads}/{d.api_writes}':>15}"
         f"{f'{c.api_reads}/{c.api_writes}':>15}"
         f"{f'{o.api_reads}/{o.api_writes}':>13}"),
    )

    # Table 2's qualitative content, asserted.
    assert d.interaction_point == "content site"
    assert c.interaction_point == "social site"
    assert o.interaction_point == "content site"
    assert d.profiles_created == 3 * len(scenario.users)
    assert c.profiles_created == o.profiles_created == len(scenario.users)
    assert d.duplicate_connections > 0
    assert c.duplicate_connections == o.duplicate_connections == 0
    assert d.content_site_can_analyze and o.content_site_can_analyze
    assert not c.content_site_can_analyze
    assert o.api_reads > 0  # the open model's integration is measurable


def test_decentralized_runtime(scenario, benchmark):
    benchmark(run_decentralized, scenario)


def test_closed_cartel_runtime(scenario, benchmark):
    benchmark(run_closed_cartel, scenario)


def test_open_cartel_runtime(scenario, benchmark):
    benchmark(run_open_cartel, scenario)

"""Result diversification — the paper's own follow-up direction.

§7.2 cites "It takes variety to make a world: Diversification in
recommender systems" (Yu, Lakshmanan & Amer-Yahia, EDBT 2009 — the paper's
reference [30]) as the companion work on how recommendation lists should be
explained *and varied*.  This module implements the two classic
diversification objectives for SocialScope result lists:

* :func:`mmr_diversify` — Maximal Marginal Relevance: greedily pick the
  item maximising ``λ·relevance − (1−λ)·max-similarity-to-chosen``;
* :func:`coverage_diversify` — attribute coverage: greedily prefer items
  contributing an unseen attribute value (e.g. a new city or category)
  before refilling by pure relevance.

Similarity between items defaults to §7.2's ``ItemSim`` (tagger-set
Jaccard / derived ``sim_item`` links), so social provenance drives
diversity just as it drives explanations.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core import Id, SocialContentGraph
from repro.discovery.msg import MeaningfulSocialGraph
from repro.presentation.explanations import item_similarity

Similarity = Callable[[Id, Id], float]


def _default_similarity(graph: SocialContentGraph) -> Similarity:
    cache: dict[tuple[Id, Id], float] = {}

    def sim(a: Id, b: Id) -> float:
        key = (a, b) if repr(a) <= repr(b) else (b, a)
        if key not in cache:
            cache[key] = item_similarity(graph, key[0], key[1])
        return cache[key]

    return sim


def mmr_diversify(
    msg: MeaningfulSocialGraph,
    k: int,
    lam: float = 0.7,
    similarity: Similarity | None = None,
) -> list[tuple[Id, float]]:
    """Maximal Marginal Relevance over an MSG's scored items.

    Returns (item, mmr score at selection time) pairs, best first.  ``lam``
    = 1 reduces to pure relevance ranking; ``lam`` = 0 to pure diversity.
    """
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be within [0, 1]")
    sim = similarity or _default_similarity(msg.graph)
    remaining = {s.item_id: s.combined for s in msg.items}
    chosen: list[tuple[Id, float]] = []
    while remaining and len(chosen) < k:
        best_item, best_value = None, float("-inf")
        for item, relevance in sorted(remaining.items(), key=lambda kv: repr(kv[0])):
            penalty = max(
                (sim(item, done) for done, _ in chosen), default=0.0
            )
            value = lam * relevance - (1 - lam) * penalty
            if value > best_value:
                best_item, best_value = item, value
        chosen.append((best_item, best_value))
        del remaining[best_item]
    return chosen


def coverage_diversify(
    msg: MeaningfulSocialGraph,
    k: int,
    attribute: str = "category",
) -> list[tuple[Id, float]]:
    """Attribute-coverage diversification.

    First pass greedily picks, in relevance order, only items whose
    *attribute* value has not been shown yet; a second pass refills the
    remaining slots by pure relevance.  Guarantees every value of the
    attribute present in the result set is represented before any value
    repeats (for k ≥ number of distinct values).
    """
    ranked = [(s.item_id, s.combined) for s in msg.items]
    seen_values: set[str] = set()
    picked: list[tuple[Id, float]] = []
    leftovers: list[tuple[Id, float]] = []
    for item, score in ranked:
        values = msg.graph.node(item).values(attribute) if msg.graph.has_node(item) else ()
        value = str(values[0]) if values else "(none)"
        if value not in seen_values:
            seen_values.add(value)
            picked.append((item, score))
        else:
            leftovers.append((item, score))
        if len(picked) >= k:
            return picked[:k]
    picked.extend(leftovers)
    return picked[:k]


def intra_list_similarity(
    items: Sequence[Id],
    graph: SocialContentGraph,
    similarity: Similarity | None = None,
) -> float:
    """Mean pairwise similarity of a result list (lower = more diverse).

    The standard diversity metric used to evaluate diversification; the
    diversification bench reports it for plain vs MMR vs coverage lists.
    """
    if len(items) < 2:
        return 0.0
    sim = similarity or _default_similarity(graph)
    total = 0.0
    pairs = 0
    for i, a in enumerate(items):
        for b in items[i + 1:]:
            total += sim(a, b)
            pairs += 1
    return total / pairs if pairs else 0.0

"""Physical operators: the executable layer below the logical algebra.

The logical plan (:mod:`repro.core.expr`) says *what* to compute; a
physical plan says *how*.  Most operators have exactly one sensible
implementation and lower to :class:`ScanOp`, which delegates to the
logical node's eager compute.  Where a real access-path choice exists —
keyword selection over the indexed item population — the compiler may
lower to :class:`IndexKeywordScanOp`, which reads
:class:`~repro.indexing.semantic.SemanticItemIndex` posting lists instead
of scanning every node (§6.2's "inverted lists are a natural index
structure"), with bit-for-bit identical scores by the index's parity
contract.

Execution profiles itself: every operator records its actual output
cardinality and wall time into the :class:`ExecContext`, so an executed
plan can be rendered EXPLAIN-style with estimated vs. actual cardinalities
per operator (:meth:`PhysicalPlan.render`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.expr import Expr, LiteralE, iter_plan_nodes
from repro.core.graph import SocialContentGraph
from repro.core.stats import Card, GraphStats
from repro.errors import ExpressionError

#: Access-path tags used in plan rendering and response metadata.
SCAN = "scan"
INDEX = "index"
#: Network-aware (§6.2) access paths of the compiled social stage.
NETWORK_EXACT = "network-exact"
NETWORK_CLUSTERED = "network-clustered"


class ExecContext:
    """Mutable per-execution state: inputs, memo, and operator profiles."""

    def __init__(
        self,
        env: Mapping[str, SocialContentGraph],
        index_provider: Callable[[], Any] | None = None,
        network_provider: Callable[[str], Any] | None = None,
    ):
        self.env = env
        self.index_provider = index_provider
        #: variant name ("exact"/"clustered") → §6.2 endorsement index
        self.network_provider = network_provider
        #: per-operator results, keyed by physical node identity (the DAG
        #: dedup — shared sub-plans execute once, as in Expr.evaluate)
        self.memo: dict[int, SocialContentGraph] = {}
        #: per-operator (actual cardinality, elapsed seconds)
        self.actuals: dict[int, tuple[Card, float]] = {}
        #: id()s of result graphs aliased straight from env/literal inputs
        self.borrowed: set[int] = set()
        #: id()s of operators that degraded from their planned access path
        #: at runtime (e.g. endorsement merge falling back to the probe)
        self.degraded: set[int] = set()


class PhysicalOp:
    """Base class of executable operators; children execute first."""

    #: access-path tag shown in EXPLAIN output (None = not an access choice)
    access_path: str | None = None

    def __init__(self, logical: Expr, children: Sequence["PhysicalOp"] = ()):
        self.logical = logical
        self.children = tuple(children)

    def estimate(self, stats: GraphStats) -> Card:
        """Estimated *output* cardinality (access-path independent)."""
        return self.logical.estimate(stats)

    def describe(self) -> str:
        """One-line operator description for plan rendering."""
        return self.logical.describe()

    def execute(self, ctx: ExecContext) -> SocialContentGraph:
        """Run this operator (memoised per execution) and profile it."""
        key = id(self)
        if key in ctx.memo:
            return ctx.memo[key]
        inputs = [child.execute(ctx) for child in self.children]
        start = time.perf_counter()
        result = self._run(ctx, inputs)
        elapsed = time.perf_counter() - start
        ctx.memo[key] = result
        ctx.actuals[key] = (Card(result.num_nodes, result.num_links), elapsed)
        return result

    def _run(
        self, ctx: ExecContext, inputs: Sequence[SocialContentGraph]
    ) -> SocialContentGraph:
        raise NotImplementedError


class InputOp(PhysicalOp):
    """Fetch a named base graph from the execution environment."""

    def _run(self, ctx, inputs):
        name = self.logical.name  # type: ignore[attr-defined]
        if name not in ctx.env:
            raise ExpressionError(f"no input graph named {name!r} supplied")
        graph = ctx.env[name]
        ctx.borrowed.add(id(graph))
        return graph


class LiteralOp(PhysicalOp):
    """An inline constant graph."""

    def _run(self, ctx, inputs):
        graph = self.logical.graph  # type: ignore[attr-defined]
        ctx.borrowed.add(id(graph))
        return graph


class ScanOp(PhysicalOp):
    """The default physical form: the logical operator's eager compute."""

    def _run(self, ctx, inputs):
        return self.logical._compute(inputs)


class IndexKeywordScanOp(PhysicalOp):
    """σN over the item population served from inverted posting lists.

    Lowered only for keyword selections whose scope is exactly the indexed
    item type and whose scorer is the index's shared tf-idf (checked at
    compile time), so the produced null graph — matching items with their
    scores attached — is record-for-record what :class:`ScanOp` would
    build.  If the index provider disappears between compile and execute,
    the operator degrades to the scan compute rather than failing.
    """

    access_path = INDEX

    def __init__(
        self, logical: Expr, children: Sequence[PhysicalOp], item_type: str
    ):
        super().__init__(logical, children)
        self.item_type = item_type
        self.keywords = logical.condition.keywords  # type: ignore[attr-defined]

    def describe(self) -> str:
        return f"{self.logical.describe()} [index:{self.item_type}]"

    def _run(self, ctx, inputs):
        index = ctx.index_provider() if ctx.index_provider is not None else None
        if index is None:
            return self.logical._compute(inputs)
        graph = inputs[0]
        scores = index.candidates(self.keywords)
        return graph.null_graph(
            graph.node(item).with_score(score)
            for item, score in scores.items()
            if graph.has_node(item)
        )


class _SocialStageOp(PhysicalOp):
    """Base of the social-stage physical forms.

    The logical node may still say ``"auto"``; the compiler resolves the
    strategy from statistics at lowering time and pins it here, so
    execution and EXPLAIN agree on what actually ran.
    """

    #: short physical-form tag shown in plan rendering
    form = "social"

    def __init__(self, logical: Expr, children: Sequence[PhysicalOp],
                 strategy: str):
        super().__init__(logical, children)
        self.strategy = strategy

    def describe(self) -> str:
        return f"social⟨{self.strategy}⟩ [{self.form}]"

    def _run(self, ctx, inputs):
        return self.logical.compute_resolved(inputs, self.strategy)  # type: ignore[attr-defined]


class SemiJoinProbeOp(_SocialStageOp):
    """Friend/expert endorsement by probing each basis member's adjacency.

    The scan form of the social stage: a semi-join of basis activities
    into the candidate set, aggregated per item — one adjacency probe per
    basis member, Example 4's reading executed directly.
    """

    form = "probe"


class GroupedAggregationOp(_SocialStageOp):
    """Similarity-driven strategies as one grouped aggregation pass.

    Serves ``similar_users`` (Example 5's collaborative filter: group
    activities per user, Jaccard against the querying user, merge
    weighted endorsements) and ``item_based`` (group ``sim_item`` support
    per candidate).
    """

    form = "group-agg"


class EndorsementMergeOp(_SocialStageOp):
    """Friend endorsement served from §6.2 network-aware posting lists.

    Lowered only in the uniform-weight regime (empty-keyword queries,
    every fit 1.0), where the probe's score is exactly
    ``count(friends(u) ∩ actors(i))`` — the stored ``IL^u_k`` score with
    one pseudo-tag.  The exact variant reads the user's list; the
    clustered variant reads the cluster's upper-bound list and rescores
    exactly (the paper's Eq 1 overhead).  If the provider is missing or
    the data regime diverges (multi-activity pairs), the operator degrades
    to the probe compute rather than risking drift.
    """

    def __init__(self, logical: Expr, children: Sequence[PhysicalOp],
                 strategy: str, variant: str):
        super().__init__(logical, children, strategy)
        self.variant = variant
        self.access_path = (
            NETWORK_CLUSTERED if variant == "clustered" else NETWORK_EXACT
        )

    @property
    def form(self) -> str:  # type: ignore[override]
        return f"endorse-merge:{self.variant}"

    def _run(self, ctx, inputs):
        from repro.core.social import encode_social_result
        from repro.indexing.endorsement import ACT_TAG, endorsement_entries

        provider = ctx.network_provider
        index = provider(self.variant) if provider is not None else None
        if index is None:
            ctx.degraded.add(id(self))
            return super()._run(ctx, inputs)
        user = self.logical.user_id  # type: ignore[attr-defined]
        entries = endorsement_entries(index, user)
        if entries is None:  # regime the index cannot serve exactly
            ctx.degraded.add(id(self))
            return super()._run(ctx, inputs)
        graph, candidates, _basis = inputs
        candidate_ids = {n.id for n in candidates.nodes()}
        basis_members = index.data.basis.get(user, set())
        scores: dict = {}
        endorsers: dict = {}
        for item, score in entries:
            if item not in candidate_ids:
                continue
            scores[item] = score
            members = index.data.taggers.get((item, ACT_TAG), set())
            endorsers[item] = {m: 1.0 for m in sorted(members & basis_members,
                                                      key=repr)}
        # Uniform-weight Selma fallback: an empty endorsement set under an
        # empty query marks the expert fallback (whose expert search over
        # zero query terms yields nothing), exactly as the probe path does.
        return encode_social_result(
            graph, candidates, scores, endorsers, {}, self.strategy,
            fallback=not scores,
        )


@dataclass(frozen=True)
class OperatorProfile:
    """One EXPLAIN row: an operator with estimated vs. actual cardinality."""

    op: str
    depth: int
    estimated: Card
    actual: Card | None
    elapsed_s: float
    access_path: str | None = None

    def line(self) -> str:
        actual = (
            f"act {self.actual.nodes:.0f}n/{self.actual.links:.0f}l"
            if self.actual is not None
            else "act -"
        )
        return (
            f"{'  ' * self.depth}{self.op}  "
            f"[est {self.estimated!r}  {actual}  {self.elapsed_s * 1e3:.2f}ms]"
        )


@dataclass
class PlanExecution:
    """One execution of a physical plan: result graph + operator profiles."""

    plan: "PhysicalPlan"
    result: SocialContentGraph
    profiles: tuple[OperatorProfile, ...]
    cache_hit: bool = False
    #: operators that abandoned their planned access path at runtime
    degraded_ops: int = 0

    @property
    def used_network_index(self) -> bool:
        """True when a §6.2 endorsement index actually served this run.

        Plan-level ``uses_network_index`` says what was *lowered*; an
        operator may still degrade at execution time (missing provider,
        data regime the index cannot serve exactly) — then this is False.
        """
        return self.plan.uses_network_index and self.degraded_ops == 0

    def scores(self) -> dict:
        """The result as a score map (Def 1 null-graph reading).

        Unscored nodes map to 0.0 — exactly how the discovery pipeline
        reads a scoped-but-unscored candidate set.
        """
        return {node.id: (node.score or 0.0) for node in self.result.nodes()}

    @property
    def used_index(self) -> bool:
        return self.plan.uses_index

    def render(self) -> str:
        """EXPLAIN ANALYZE-style tree: every operator, est vs. actual."""
        header = [
            f"access={self.plan.access_path}  cache={'hit' if self.cache_hit else 'miss'}"
        ]
        if self.plan.rewrites.applied:
            header.append(f"rewrites: {', '.join(self.plan.rewrites.applied)}")
        return "\n".join(header + [p.line() for p in self.profiles])


class PhysicalPlan:
    """A compiled, executable plan with cardinality bookkeeping.

    Produced by :func:`repro.plan.compiler.compile_plan`; immutable once
    built, so one compiled plan can serve any number of executions (the
    plan cache relies on this).
    """

    def __init__(
        self,
        root: PhysicalOp,
        logical: Expr,
        source: Expr,
        rewrites,
        stats: GraphStats,
        key,
        decisions: tuple = (),
        strategy_decision=None,
        resolved_strategy: str | None = None,
    ):
        self.root = root
        self.logical = logical
        self.source = source
        self.rewrites = rewrites
        self.stats = stats
        self.key = key
        #: access-path decisions the compiler made (one per choice costed)
        self.decisions = decisions
        #: the cost-based strategy pick when the query left it open
        self.strategy_decision = strategy_decision
        #: concrete social strategy the lowered plan runs (None when the
        #: plan has no social stage)
        self.resolved_strategy = resolved_strategy

    @property
    def uses_index(self) -> bool:
        """True when any operator reads the semantic inverted index."""
        return any(
            op.access_path == INDEX for op in self._walk(self.root, set())
        )

    @property
    def uses_network_index(self) -> bool:
        """True when the social stage reads a §6.2 endorsement index."""
        return any(
            op.access_path in (NETWORK_EXACT, NETWORK_CLUSTERED)
            for op in self._walk(self.root, set())
        )

    @property
    def access_path(self) -> str:
        """Dominant access path tag for response metadata."""
        return INDEX if self.uses_index else SCAN

    @staticmethod
    def _walk(op: PhysicalOp, seen: set):
        if id(op) in seen:
            return
        seen.add(id(op))
        yield op
        for child in op.children:
            yield from PhysicalPlan._walk(child, seen)

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        env: Mapping[str, SocialContentGraph],
        index_provider: Callable[[], Any] | None = None,
        network_provider: Callable[[str], Any] | None = None,
    ) -> PlanExecution:
        """Run the plan; the result never aliases an input/literal graph."""
        ctx = ExecContext(env, index_provider, network_provider)
        result = self.root.execute(ctx)
        if id(result) in ctx.borrowed:
            result = result.copy()
        return PlanExecution(
            plan=self, result=result, profiles=tuple(self._profiles(ctx)),
            degraded_ops=len(ctx.degraded),
        )

    def _profiles(self, ctx: ExecContext, op: PhysicalOp | None = None,
                  depth: int = 0):
        op = op if op is not None else self.root
        actual, elapsed = ctx.actuals.get(id(op), (None, 0.0))
        description = op.describe()
        if id(op) in ctx.degraded:
            description += " (degraded→probe)"
        yield OperatorProfile(
            op=description,
            depth=depth,
            estimated=op.estimate(self.stats),
            actual=actual,
            elapsed_s=elapsed,
            access_path=op.access_path,
        )
        for child in op.children:
            yield from self._profiles(ctx, child, depth + 1)

    # -- rendering --------------------------------------------------------------

    def render(self) -> str:
        """Pre-execution plan tree with estimates only."""
        lines = []

        def walk(op: PhysicalOp, depth: int) -> None:
            lines.append(
                f"{'  ' * depth}{op.describe()}  [est {op.estimate(self.stats)!r}]"
            )
            for child in op.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        ops = sum(1 for _ in self._walk(self.root, set()))
        return (
            f"PhysicalPlan(ops={ops}, access={self.access_path}, "
            f"rewrites={len(self.rewrites.applied)})"
        )

"""Dynamic-batching keys: which concurrent requests may share a batch.

Two requests belong in one batch when they compile to the same physical
plan — then the first member pays the (shared-cache) compile and every
other member is a plan-cache hit executed over the already-primed warm
session state.  The compiled plan's identity is a function of the query
*shape*: the requesting user (the connection basis and social stage embed
it), the keyword text, the structural condition, the strategy/alpha
overrides, and the access-path preference.  Pagination (``page``,
``page_size``, ``cursor``), the result budget ``k``, the grouping
dimension and the ``explain`` flag are all *execution* parameters — they
never enter the plan shape, so requests differing only in those still
batch (each is still evaluated individually inside ``run_many``, keeping
responses bit-identical to sequential ``Session.run``).

The key is simply the request normalised to its plan-shaping fields —
``SearchRequest`` is frozen and hashable by design, so the normalised
request *is* the dictionary key, with no second fingerprinting scheme to
drift out of sync with the compiler's.
"""

from __future__ import annotations

from repro.api import SearchRequest

#: Execution-only fields erased by normalisation (documentation + tests).
EXECUTION_ONLY_FIELDS = (
    "k", "grouping", "page", "page_size", "cursor", "explain",
)


def batch_key(request: SearchRequest) -> SearchRequest:
    """The plan-shape identity of *request* (a normalised frozen request).

    Requests with equal keys execute as one ``Session.run_many`` batch;
    see the module docstring for which fields are erased and why.
    """
    return request.replace(
        k=None,
        grouping=None,
        page=1,
        page_size=None,
        cursor=None,
        explain=False,
    )


def describe_key(key: SearchRequest) -> str:
    """A short human-readable label for one batch key (stats/reports)."""
    parts = [f"u={key.user_id!r}"]
    if key.text:
        parts.append(f"text={key.text!r}")
    if key.structural is not None:
        parts.append(f"structural={key.structural!r}")
    if key.strategy is not None:
        parts.append(f"strategy={key.strategy}")
    if key.alpha is not None:
        parts.append(f"alpha={key.alpha:g}")
    if key.use_index is not None:
        parts.append(f"use_index={key.use_index}")
    return " ".join(parts)


__all__ = ["batch_key", "describe_key", "EXECUTION_ONLY_FIELDS"]

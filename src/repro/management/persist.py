"""Durable sites: per-shard snapshots + WAL recovery (the paper's §5 tier).

The content-management tier assumes the site's graph, indexes and learned
statistics outlive any single process; this module is where that promise
is kept.  A **site snapshot** is a directory::

    <site>/
      MANIFEST.json          -- committed last; its presence = a snapshot
      shard-0000.jsonl       -- one v2 JSON-lines file per physical shard
      shard-0001.jsonl          (records carry provenance ``origin``)
      wal/
        wal-000000000042.log -- CRC-framed activity tail (see wal.py)

Shard files are the :mod:`repro.core.serialize` JSON-lines codec with the
v2 extras: the header carries shard metadata, every record carries its
``origin`` so provenance survives the round trip, and each file's CRC32
is recorded in the manifest — a snapshot that does not verify refuses to
recover rather than serving silently wrong rankings.

**Recovery = load snapshot + replay the WAL tail**: records with ``seq``
at or below the manifest's ``applied_seq`` watermark are skipped (replay
idempotency), a torn final record truncates cleanly
(:func:`repro.management.wal.read_wal`), and the recovered
:class:`~repro.management.DataManager` continues the persisted version /
mutation-epoch counters so nothing stamped by the pre-crash process can
alias fresh state.

Upper layers ride along in the manifest's ``extra`` mapping: the session
engine persists its refresh epoch, boot token, analysis log and
plan-cache warming recipes; the planner's learned
:class:`~repro.core.stats.CardinalityFeedback` corrections travel as a
JSON table.  This module treats all of it as opaque — management does not
import the api layer.

Write protocol: every file lands under a temporary name, is fsynced,
then atomically renamed; the manifest is written last and the directory
entry fsynced, so a crash mid-snapshot leaves either the previous
complete snapshot or none — never a half one.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core import SocialContentGraph
from repro.core.faults import fault_point
from repro.core.serialize import (
    dumps_strict,
    jsonl_header,
    link_from_dict,
    link_to_dict,
    loads_strict,
    node_from_dict,
    node_to_dict,
)
from repro.errors import PersistenceError
from repro.management import wal as walmod
from repro.management.storage import (
    GraphStore,
    LOCAL,
    PartitionedGraphStore,
)

SNAPSHOT_FORMAT = "socialscope-site"
SNAPSHOT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
WAL_DIRNAME = "wal"


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_atomic(path: Path, text: str) -> int:
    """Write-then-rename with fsync; returns the content's CRC32."""
    data = text.encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # chaos hook: a handler may corrupt the durable bytes *after* the
    # CRC was taken, so the read-side verify must catch it honestly
    fault_point("persist.snapshot", path=path)
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass
class RecoveredSite:
    """What :func:`recover_data_manager` hands back."""

    manifest: dict[str, Any]
    #: WAL records replayed on top of the snapshot (after the watermark)
    replayed: int = 0
    #: a torn WAL tail was found and truncated away
    tail_truncated: bool = False
    #: the data manager, set by the caller-facing wrapper
    extra: dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Snapshot writing
# ---------------------------------------------------------------------------


def _shard_stores(store: GraphStore | PartitionedGraphStore) -> list[GraphStore]:
    if isinstance(store, PartitionedGraphStore):
        return list(store.shards)
    return [store]


def _shard_lines(
    store: GraphStore | PartitionedGraphStore,
    shard: GraphStore,
    index: int,
) -> str:
    """One shard's v2 JSON-lines document (deterministic record order)."""
    lines = [
        dumps_strict(
            jsonl_header(
                meta={
                    "shard": index,
                    "nodes": shard.num_nodes,
                    "links": shard.num_links,
                }
            )
        )
    ]
    for node in sorted(shard._nodes.values(), key=lambda n: repr(n.id)):
        record = {"kind": "node", **node_to_dict(node)}
        origin = store.origin_of("node", node.id)
        if origin is not None:
            record["origin"] = origin
        lines.append(dumps_strict(record))
    for link in sorted(shard._links.values(), key=lambda l: repr(l.id)):
        record = {"kind": "link", **link_to_dict(link)}
        origin = store.origin_of("link", link.id)
        if origin is not None:
            record["origin"] = origin
        lines.append(dumps_strict(record))
    return "\n".join(lines) + "\n"


def write_snapshot(
    data_manager: Any,
    directory: str | Path,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Snapshot *data_manager*'s store into *directory*; returns the manifest.

    ``extra`` is persisted verbatim under the manifest's ``"extra"`` key —
    the upper layers' state (session epochs, feedback tables, warming
    recipes) rides along without management knowing its shape.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    store = data_manager.store
    shards = _shard_stores(store)
    shard_entries = []
    graph = data_manager.graph()
    for index, shard in enumerate(shards):
        file_name = f"shard-{index:04d}.jsonl"
        crc = _write_atomic(
            directory / file_name, _shard_lines(store, shard, index)
        )
        shard_entries.append({
            "file": file_name,
            "nodes": shard.num_nodes,
            "links": shard.num_links,
            "crc32": crc,
        })
    manifest: dict[str, Any] = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "site_name": data_manager.site_name,
        "num_shards": len(shards),
        "indexed_attributes": list(data_manager.indexed_attributes),
        "dm_version": data_manager.version,
        "mutation_epoch": graph.mutation_epoch,
        "applied_seq": data_manager.applied_seq,
        "shards": shard_entries,
        "extra": dict(extra or {}),
    }
    _write_atomic(directory / MANIFEST_NAME, dumps_strict(manifest, indent=1))
    _fsync_path(directory)
    return manifest


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


def read_manifest(directory: str | Path) -> dict[str, Any]:
    """Load and validate a snapshot manifest."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        raise PersistenceError(f"no snapshot manifest at {path}")
    try:
        manifest = loads_strict(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        raise PersistenceError(f"unreadable manifest {path}: {exc}") from exc
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise PersistenceError(
            f"{path}: not a {SNAPSHOT_FORMAT} manifest "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") != SNAPSHOT_VERSION:
        raise PersistenceError(
            f"{path}: unsupported snapshot version "
            f"{manifest.get('version')!r} (this build reads "
            f"{SNAPSHOT_VERSION})"
        )
    return manifest


def _load_shard_records(
    directory: Path, entry: dict[str, Any]
) -> list[dict[str, Any]]:
    path = directory / entry["file"]
    if not path.exists():
        raise PersistenceError(f"snapshot shard file missing: {path}")
    data = path.read_bytes()
    crc = zlib.crc32(data) & 0xFFFFFFFF
    if crc != entry["crc32"]:
        raise PersistenceError(
            f"{path}: checksum mismatch (manifest {entry['crc32']:08x}, "
            f"file {crc:08x}) — snapshot is corrupt, refusing to recover"
        )
    records = []
    for line in data.decode("utf-8").splitlines():
        if line.strip():
            records.append(loads_strict(line))
    return records


def _apply_wal_record(store: Any, record: dict[str, Any]) -> None:
    op = record["op"]
    if op == walmod.OP_NODE:
        store.upsert_node(
            node_from_dict(record), origin=record.get("origin", LOCAL)
        )
    elif op == walmod.OP_LINK:
        store.upsert_link(
            link_from_dict(record), origin=record.get("origin", LOCAL)
        )
    elif op == walmod.OP_DEL_NODE:
        store.delete_node(record["id"])
    elif op == walmod.OP_DEL_LINK:
        store.delete_link(record["id"])
    else:
        raise PersistenceError(f"unknown WAL op {op!r} in record {record!r}")


def recover_data_manager(
    directory: str | Path,
    *,
    resume_wal: bool = True,
    repair_tail: bool = True,
) -> tuple[Any, RecoveredSite]:
    """Rebuild a :class:`DataManager` from a site snapshot + WAL tail.

    The recovered manager continues the persisted epoch counters
    (``version`` and the serving graph's mutation epoch move monotonically
    across the restart) and — under ``resume_wal`` — carries a fresh WAL
    writer positioned after the last replayed record, so the site keeps
    journaling from the moment it is back.
    """
    from repro.management.datamanager import DataManager

    directory = Path(directory)
    manifest = read_manifest(directory)
    report = RecoveredSite(manifest=manifest)

    dm = DataManager(
        site_name=manifest["site_name"],
        indexed_attributes=tuple(manifest["indexed_attributes"]),
        shards=manifest["num_shards"],
    )
    # Phase 1: all nodes from every shard (links may cross shards).
    shard_records = [
        _load_shard_records(directory, entry) for entry in manifest["shards"]
    ]
    for records in shard_records:
        for record in records:
            if record.get("kind") == "node":
                dm.store.upsert_node(
                    node_from_dict(record),
                    origin=record.get("origin", LOCAL),
                )
    for records in shard_records:
        for record in records:
            if record.get("kind") == "link":
                dm.store.upsert_link(
                    link_from_dict(record),
                    origin=record.get("origin", LOCAL),
                )

    # Phase 2: replay the activity tail past the snapshot watermark.
    applied = int(manifest["applied_seq"])
    wal_dir = directory / WAL_DIRNAME
    records, tail = walmod.read_wal(wal_dir)
    if tail is not None and repair_tail:
        walmod.truncate_torn_tail(tail)
        report.tail_truncated = True
    for record in walmod.iter_tail(records, applied):
        try:
            _apply_wal_record(dm.store, record)
        except PersistenceError:
            raise
        except Exception as exc:
            raise PersistenceError(
                f"WAL replay failed at seq {record.get('seq')!r} "
                f"({record.get('op')!r}): {exc}"
            ) from exc
        applied = record["seq"]
        report.replayed += 1

    # Phase 3: continuity — counters never move backwards across a crash.
    dm._mark_changed()
    dm._version = max(
        dm.version, int(manifest["dm_version"]) + report.replayed
    )
    dm._applied_seq = applied
    dm.graph().advance_mutation_epoch(int(manifest["mutation_epoch"]))
    if resume_wal:
        dm.attach_wal(
            walmod.WalWriter(wal_dir, next_seq=applied + 1)
        )
    report.extra = dict(manifest.get("extra", {}))
    return dm, report


def snapshot_graph(directory: str | Path) -> SocialContentGraph:
    """The recovered site's logical graph alone (no manager machinery)."""
    dm, _ = recover_data_manager(directory, resume_wal=False)
    return dm.graph()

"""VIOLATION (T001): production code importing the test-only package —
this module could arm fault handlers in a serving process."""

from app.testing.faults import arm


def handle() -> int:
    return arm()

"""The Information Discoverer (paper §3): query → Meaningful Social Graph.

    "The Information Discoverer parses the user query, constructs its
    internal representations (based on various semantic and social
    relevance computations), and evaluates them on the social content
    graph."

Pipeline per query:

1. parse (:mod:`repro.discovery.query`) and classify
   (:mod:`repro.discovery.classify`) the text;
2. semantic relevance: scope + score candidates (σN with tf-idf);
3. connection selection: pick the friend subset fit for the query, falling
   back to topic experts (Example 2);
4. social relevance: run the configured strategy (friend endorsements by
   default; Example 5 CF and item-based CF available);
5. combine into one relevance score — ``α·semantic + (1-α)·social`` over
   max-normalised components; empty queries use social only (§4);
6. assemble the MSG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Id, SocialContentGraph
from repro.discovery.classify import QueryClassifier
from repro.discovery.connections import ConnectionSelector
from repro.discovery.msg import MeaningfulSocialGraph, ScoredItem, assemble_msg
from repro.discovery.query import Query, parse_query
from repro.discovery.relevance import SemanticRelevance
from repro.discovery.strategies import (
    DEFAULT_STRATEGIES,
    FriendBasedStrategy,
    SocialStrategy,
)
from repro.errors import DiscoveryError


@dataclass
class DiscoveryConfig:
    """Tunables for the discovery pipeline."""

    #: semantic weight α in the combined score (1-α is social)
    alpha: float = 0.5
    #: how many results an MSG carries
    max_results: int = 20
    #: social strategy name from the registry
    strategy: str = "friends"
    #: drop items with a combined score of zero
    drop_zero: bool = True


class InformationDiscoverer:
    """Evaluates queries into Meaningful Social Graphs."""

    def __init__(
        self,
        graph: SocialContentGraph,
        config: DiscoveryConfig | None = None,
        strategies: dict[str, SocialStrategy] | None = None,
        item_type: str = "item",
    ):
        self.graph = graph
        self.config = config or DiscoveryConfig()
        self.strategies = dict(strategies or DEFAULT_STRATEGIES)
        self.classifier = QueryClassifier()
        self.semantic = SemanticRelevance(graph, item_type=item_type)
        self.connections = ConnectionSelector(graph)

    def strategy(self, name: str | None = None) -> SocialStrategy:
        """Resolve a strategy by name (configured default when None)."""
        key = name or self.config.strategy
        strategy = self.strategies.get(key)
        if strategy is None:
            raise DiscoveryError(
                f"unknown social strategy {key!r}; have {sorted(self.strategies)}"
            )
        return strategy

    # ------------------------------------------------------------------ main
    def discover(
        self,
        user_id: Id,
        text: str = "",
        structural=None,
        strategy: str | None = None,
        k: int | None = None,
    ) -> MeaningfulSocialGraph:
        """Run the full pipeline for one query."""
        query = parse_query(user_id, text, structural)
        return self.discover_query(query, strategy=strategy, k=k)

    def discover_query(
        self,
        query: Query,
        strategy: str | None = None,
        k: int | None = None,
    ) -> MeaningfulSocialGraph:
        """Evaluate an already-parsed query."""
        limit = k if k is not None else self.config.max_results
        semantic = self.semantic.candidates(query)
        candidates = set(semantic.scores)

        selection = self.connections.select(query.user_id, query.keywords)
        chosen = self.strategy(strategy)
        social = chosen.score(self.graph, query.user_id, candidates, selection)
        # Selma fallback: if the friend basis produced nothing (or experts
        # were already chosen), friend strategies rerun over experts.
        if (
            not social.scores
            and isinstance(chosen, FriendBasedStrategy)
            and not selection.used_expert_fallback
        ):
            from repro.discovery.connections import find_experts

            selection.used_expert_fallback = True
            selection.experts = find_experts(
                self.graph, set(query.keywords), exclude={query.user_id}
            )
            social = chosen.score(
                self.graph, query.user_id, candidates, selection
            )

        semantic_norm = semantic.normalized()
        social_norm = social.normalized()
        alpha = 0.0 if query.is_empty else self.config.alpha

        combined: list[ScoredItem] = []
        for item in candidates:
            sem = semantic_norm.get(item, 0.0)
            soc = social_norm.get(item, 0.0)
            score = alpha * sem + (1 - alpha) * soc
            if self.config.drop_zero and score <= 0.0:
                continue
            combined.append(
                ScoredItem(item_id=item, semantic=sem, social=soc, combined=score)
            )
        combined.sort(key=lambda s: (-s.combined, repr(s.item_id)))
        combined = combined[:limit]
        return assemble_msg(
            self.graph, query, combined, social, selection.used_expert_fallback
        )

"""The SocialScope query model (paper §4, "Queries").

    "Users interact with SocialScope by specifying a (possibly empty)
    query on content and structure.  Structural predicates are interpreted
    in the usual Boolean sense, while content conditions are used to
    compute semantic relevance which, combined with social relevance,
    results in a single relevance score.  ...  When the structural
    predicates are absent in the query, only semantic relevance and social
    relevance are taken into account.  And when a query is empty, only
    social relevance is accounted for."

:class:`Query` carries the three ingredients: the requesting user, content
keywords, and optional structural predicates (a
:class:`repro.core.conditions.Condition` scoping the candidate items).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core import Condition, Id, as_condition
from repro.core.text import tokenize
from repro.errors import QueryError


@dataclass(frozen=True)
class Query:
    """A parsed user query."""

    user_id: Id
    keywords: tuple[str, ...] = ()
    structural: Condition | None = None
    raw_text: str = ""

    @property
    def is_empty(self) -> bool:
        """True for the pure-recommendation case (no content, no structure)."""
        return not self.keywords and self.structural is None

    @property
    def has_structure(self) -> bool:
        """True when structural predicates scope the query."""
        return self.structural is not None

    def scope_condition(self, default_type: str = "item") -> Condition:
        """The full candidate-scoping condition for this query.

        Structural predicates apply Boolean-ly; keywords scope via content
        match (Definition 1's satisfaction); when neither is present, the
        scope is all nodes of *default_type*.
        """
        base: Mapping[str, Any] = {"type": default_type}
        structural = self.structural if self.structural is not None else Condition(base)
        if self.keywords:
            return structural.conjoin(Condition(keywords=self.keywords))
        return structural


def parse_query(
    user_id: Id,
    text: str = "",
    structural: Condition | Mapping[str, Any] | None = None,
) -> Query:
    """Build a :class:`Query` from free text plus optional structure.

    Free text becomes content keywords via the shared tokenizer; an empty
    text and no structure yields the empty query (recommendation mode).
    """
    if user_id is None:
        raise QueryError("a query needs a requesting user")
    condition = as_condition(structural) if structural is not None else None
    return Query(
        user_id=user_id,
        keywords=tuple(tokenize(text)),
        structural=condition,
        raw_text=text,
    )

"""Named fault points: zero-cost no-ops unless a test harness arms them.

Production modules call :func:`fault_point` at the places where real
deployments fail — a worker pipe request, a shard scan, a WAL fsync, a
snapshot write, a gateway batch dispatch.  The call is a dict lookup
guarded by a single ``is None`` check, so the unarmed serving path pays
one branch per site and nothing else.

Arming lives in :mod:`repro.testing.faults` — a package production code
is forbidden (archcheck rule T001) from importing, so the only way a
fault can fire in a process is for test/bench code to have armed it
explicitly.  This module deliberately knows nothing about *what* a
handler does: it receives the site name plus keyword context (paths,
worker handles, shard ids) and may raise, sleep, or mutate state.

Handlers installed here do **not** propagate into spawned worker
processes — arming is per-interpreter, which is why every fault site
sits coordinator-side.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

FaultHandler = Callable[..., None]

#: ``None`` means "nothing armed" — the common case, checked first.
_active: dict[str, FaultHandler] | None = None


def fault_point(name: str, **info: Any) -> None:
    """Fire the handler armed for *name*, if any.

    The no-handler path is a single ``is None`` test; with handlers
    armed but not for *name*, one dict lookup.  A handler may raise
    (the site's natural failure mode), sleep (hang/slowness), or touch
    the context it was handed.
    """
    if _active is None:
        return
    handler = _active.get(name)
    if handler is not None:
        handler(name, **info)


def install(handlers: Mapping[str, FaultHandler] | None) -> None:
    """Replace the armed handler table (``None`` disarms everything).

    Only :mod:`repro.testing.faults` should call this; it is module-level
    state, so callers are responsible for disarming in a ``finally``.
    """
    global _active
    _active = dict(handlers) if handlers else None


def armed() -> tuple[str, ...]:
    """The currently armed fault-point names (empty when disarmed)."""
    return tuple(sorted(_active)) if _active else ()

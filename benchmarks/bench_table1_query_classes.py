"""Experiment T1 — regenerate Table 1 (query-class mix of Y!Travel queries).

Paper numbers (10M real queries):

                 general   categorical   specific
  with locations  32.36%       22.52%      8.37%
  w/o  locations  21.38%        5.34%         —
  (~10% unclassified)

We generate 200k synthetic queries from the documented substitution model
and push them through the *classifier* (which never sees the generator's
labels); the printed grid should match the paper's within sampling noise.
The timed row is classifier throughput.
"""

from __future__ import annotations

import pytest

from repro.discovery import QueryClassifier
from repro.workloads import QueryWorkloadGenerator, table1_counts

N_QUERIES = 200_000


@pytest.fixture(scope="module")
def query_texts():
    generator = QueryWorkloadGenerator(seed=20090104)  # CIDR'09 started Jan 4
    return [q.text for q in generator.generate(N_QUERIES)]


def test_table1_grid(query_texts, report, benchmark):
    classifier = QueryClassifier()

    def classify_all():
        return [classifier.classify(t).label for t in query_texts]

    labels = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    grid = table1_counts(labels)

    paper = {
        ("with", "general"): 32.36, ("with", "categorical"): 22.52,
        ("with", "specific"): 8.37,
        ("without", "general"): 21.38, ("without", "categorical"): 5.34,
    }
    report(
        "",
        f"=== Table 1: classification of {N_QUERIES:,} synthetic queries ===",
        f"{'':<16}{'general':>12}{'categorical':>14}{'specific':>12}",
        (f"{'with locations':<16}"
         f"{grid['with']['general']*100:>11.2f}%"
         f"{grid['with']['categorical']*100:>13.2f}%"
         f"{grid['with']['specific']*100:>11.2f}%"),
        (f"{'w/o locations':<16}"
         f"{grid['without']['general']*100:>11.2f}%"
         f"{grid['without']['categorical']*100:>13.2f}%"
         f"{'—':>12}"),
        f"unclassified: {grid['unclassified']*100:.2f}%  (paper: ~10%)",
        (f"paper grid:     {paper[('with','general')]:>10.2f}%"
         f"{paper[('with','categorical')]:>13.2f}%"
         f"{paper[('with','specific')]:>11.2f}%"),
        (f"                {paper[('without','general')]:>10.2f}%"
         f"{paper[('without','categorical')]:>13.2f}%"),
    )

    # Shape assertions: the reproduced grid matches the paper's.
    assert grid["with"]["general"] == pytest.approx(0.3236, abs=0.02)
    assert grid["with"]["categorical"] == pytest.approx(0.2252, abs=0.02)
    assert grid["with"]["specific"] == pytest.approx(0.0837, abs=0.015)
    assert grid["without"]["general"] == pytest.approx(0.2138, abs=0.02)
    assert grid["without"]["categorical"] == pytest.approx(0.0534, abs=0.015)
    assert grid["unclassified"] == pytest.approx(0.10, abs=0.03)


def test_classifier_throughput(query_texts, benchmark):
    classifier = QueryClassifier()
    sample = query_texts[:5000]

    def classify_sample():
        for text in sample:
            classifier.classify(text)

    benchmark(classify_sample)

"""Fixture: one C001 (``*_locked`` call without the lock) and one C003
(lock-guarded attribute written without the lock).

``get``/``put`` guard ``hits``/``entries`` with ``self._lock``, which is
what marks them lock-guarded; ``drop`` then calls the ``_locked`` helper
bare, and ``reset`` writes ``hits`` bare.
"""

import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}
        self.hits = 0

    def _drop_locked(self, key):
        self.entries.pop(key, None)

    def drop(self, key):
        self._drop_locked(key)  # C001: caller does not hold self._lock

    def get(self, key):
        with self._lock:
            self.hits += 1
            return self.entries.get(key)

    def put(self, key, value):
        with self._lock:
            self.entries[key] = value

    def reset(self):
        self.hits = 0  # C003: hits is lock-guarded everywhere else

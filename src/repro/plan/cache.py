"""Version-keyed caches of compiled physical plans.

Keys are structural (:func:`repro.core.expr.plan_key` plus the access
preference), so a repeated request — same condition, same scorer, same
shape — skips the optimizer and lowering entirely.  Every entry is stamped
with the generation of the graph it was compiled against; a lookup under
any other generation misses, which is how Data-Manager writes and session
refreshes invalidate stale plans without eagerly walking the cache.

Entries hold *plans*, never results: a cached plan re-executes against the
live graph, and :meth:`PhysicalPlan.execute` guarantees its result aliases
no shared state, so cache hits cannot observe a caller's mutations.

Two granularities:

* :class:`PlanCache` — one owner, the original per-planner LRU;
* :class:`SharedPlanCache` — one per *process*
  (:func:`shared_plan_cache`), serving every planner at once so sessions
  answering the same hot queries amortize compilation across each other.
  Shared entries are additionally *anchored* to the graph object they
  were compiled against (a weak reference, identity-compared on lookup)
  — two planners can never exchange plans across different graphs even
  if their namespaced keys and generation counters happen to collide —
  and inserts pass a frequency-based admission policy: once the cache is
  full, a key must have missed ``admit_after`` times before it may evict
  a resident plan (a TinyLFU-style doorkeeper, so one-off queries cannot
  flush the hot set).
"""

from __future__ import annotations

import threading
import weakref
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.plan.physical import PhysicalPlan

#: Rough heap footprint of one compiled physical operator (the op object,
#: its logical node, conditions, the vector-condition tables).  Plans are
#: small next to results; the estimate only needs to rank them.
PLAN_OP_BYTES = 2_048

#: Rough heap footprint of one graph record in a memoised result: the
#: record object, its attrs dict, and its slot in the graph's id maps.
NODE_BYTES = 320
LINK_BYTES = 400
#: Fixed overhead of one memoised result graph.
GRAPH_BYTES = 256


def estimate_plan_bytes(plan: Any) -> int:
    """Byte estimate of one compiled plan (operator-count driven).

    Non-plan payloads (tests stub entries with sentinels) charge one
    operator's worth.
    """
    root = getattr(plan, "root", None)
    if root is None:
        return GRAPH_BYTES + PLAN_OP_BYTES
    ops = sum(1 for _ in PhysicalPlan._walk(root, set()))
    return GRAPH_BYTES + ops * PLAN_OP_BYTES


def estimate_graph_bytes(graph: Any) -> int:
    """Byte estimate of one result graph held by the sub-plan memo."""
    return (
        GRAPH_BYTES
        + graph.num_nodes * NODE_BYTES
        + graph.num_links * LINK_BYTES
    )


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one plan cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    #: inserts the admission policy turned away (SharedPlanCache only)
    rejects: int = 0
    #: estimated bytes currently resident
    bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Thread-safe LRU of ``key → (generation, PhysicalPlan)``.

    Bounded two ways: *maxsize* caps the entry count and *max_bytes*
    (when given) caps the estimated resident footprint — a handful of
    deep pipeline plans should not be able to pin as much memory as a
    thousand single-selection ones just because the entry count says
    they fit.
    """

    def __init__(self, maxsize: int = 256, max_bytes: int | None = None):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize!r}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes!r}")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, tuple]" = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- byte bookkeeping (always called under the lock) -----------------------

    def _drop_locked(self, key: Hashable) -> None:
        del self._entries[key]
        self._bytes -= self._sizes.pop(key, 0)

    def _evict_over_budget_locked(self) -> None:
        while len(self._entries) > 1 and (
            len(self._entries) > self.maxsize
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            evicted, _ = self._entries.popitem(last=False)
            self._bytes -= self._sizes.pop(evicted, 0)
            self._evictions += 1

    def get(self, key: Hashable, generation: Any,
            anchor: Any = None) -> PhysicalPlan | None:
        """The cached plan for *key* compiled under *generation*, or None.

        A generation mismatch counts as a miss and drops the stale entry.
        (*anchor* exists for signature compatibility with
        :class:`SharedPlanCache`; a single-owner cache has no use for it.)
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == generation:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry[1]
            if entry is not None:
                # stale: compiled against an old graph
                self._drop_locked(key)
            self._misses += 1
            return None

    def put(self, key: Hashable, generation: Any, plan: PhysicalPlan,
            anchor: Any = None) -> None:
        """Insert (or refresh) an entry, evicting LRU past either budget."""
        nbytes = estimate_plan_bytes(plan)
        with self._lock:
            if key in self._entries:
                self._bytes -= self._sizes.get(key, 0)
            self._entries[key] = (generation, plan)
            self._entries.move_to_end(key)
            self._sizes[key] = nbytes
            self._bytes += nbytes
            self._evict_over_budget_locked()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                bytes=self._bytes,
            )


class SharedPlanCache(PlanCache):
    """The process-wide plan cache: anchored entries, admission-gated.

    See the module docstring for the two safety layers on top of the LRU:
    weak *anchor* identity (an entry only serves the exact graph object it
    was compiled against) and the ``admit_after`` doorkeeper (a full cache
    only evicts for keys that have proven they repeat).
    """

    def __init__(self, maxsize: int = 1024, admit_after: int = 2,
                 max_bytes: int | None = 64 * 1024 * 1024):
        super().__init__(maxsize, max_bytes=max_bytes)
        if admit_after < 1:
            raise ValueError(
                f"admit_after must be >= 1, got {admit_after!r}"
            )
        self.admit_after = admit_after
        #: miss frequency per key — the doorkeeper's evidence of reuse
        self._seen: Counter = Counter()
        self._rejects = 0

    @staticmethod
    def _anchor_alive(ref: Any, anchor: Any) -> bool:
        if ref is None:
            return anchor is None
        target = ref()
        # a dead referent must never match — not even an anchor of None —
        # or a recycled graph address could inherit a stale plan
        return target is not None and target is anchor

    def get(self, key: Hashable, generation: Any,
            anchor: Any = None) -> PhysicalPlan | None:
        """Anchored lookup; every miss feeds the admission frequency."""
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry[0] == generation
                and self._anchor_alive(entry[2], anchor)
            ):
                self._entries.move_to_end(key)
                self._hits += 1
                return entry[1]
            if entry is not None:
                # stale generation or dead anchor
                self._drop_locked(key)
            self._misses += 1
            self._seen[key] += 1
            if len(self._seen) > 8 * self.maxsize:
                self._age_locked()
            return None

    def _age_locked(self) -> None:
        """Halve all frequencies, dropping zeros (TinyLFU-style aging)."""
        self._seen = Counter({
            key: count // 2
            for key, count in self._seen.items()
            if count // 2 > 0
        })

    def put(self, key: Hashable, generation: Any, plan: PhysicalPlan,
            anchor: Any = None) -> None:
        """Insert if resident, the cache has room, or the key earned it.

        "Room" is judged against both budgets: a cache full by entry
        count *or* by estimated bytes only evicts for keys that have
        proven they repeat.
        """
        ref = weakref.ref(anchor) if anchor is not None else None
        nbytes = estimate_plan_bytes(plan)
        with self._lock:
            full = len(self._entries) >= self.maxsize or (
                self.max_bytes is not None
                and self._bytes + nbytes > self.max_bytes
            )
            if (
                key not in self._entries
                and full
                and self._seen[key] < self.admit_after
            ):
                self._rejects += 1
                return
            if key in self._entries:
                self._bytes -= self._sizes.get(key, 0)
            self._entries[key] = (generation, plan, ref)
            self._entries.move_to_end(key)
            self._sizes[key] = nbytes
            self._bytes += nbytes
            self._evict_over_budget_locked()

    def reset(self) -> None:
        """Drop entries, frequencies *and* counters (test isolation)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._bytes = 0
            self._seen.clear()
            self._hits = self._misses = self._evictions = 0
            self._rejects = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                rejects=self._rejects,
                bytes=self._bytes,
            )


class ResultMemo:
    """The sub-plan result memo: an LRU of graphs with a byte budget.

    Holds deterministic base-graph stage results (connection bases, σN
    selections) for one graph generation.  Unlike the plan caches this
    stores *result graphs*, whose footprint varies by orders of
    magnitude — so the bound is an estimated byte budget
    (:func:`estimate_graph_bytes`), not just an entry count.  Thread
    -safe: under the pooled executor independent memoisable operators
    touch the memo from worker threads concurrently, and the LRU /
    byte-accounting updates are multi-step.  The dict-style surface
    (``get`` / ``[]=`` / ``in``) is what the physical layer and the
    pooled scheduler already speak.
    """

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 32 * 1024 * 1024):
        if max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive, got {max_entries!r}"
            )
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes!r}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self._bytes = 0
        self._lock = threading.Lock()
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return default
            self._entries.move_to_end(key)
            return entry

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __setitem__(self, key: Hashable, graph: Any) -> None:
        nbytes = estimate_graph_bytes(graph)
        with self._lock:
            if key in self._entries:
                self._bytes -= self._sizes.get(key, 0)
            self._entries[key] = graph
            self._entries.move_to_end(key)
            self._sizes[key] = nbytes
            self._bytes += nbytes
            while len(self._entries) > 1 and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                evicted, _ = self._entries.popitem(last=False)
                self._bytes -= self._sizes.pop(evicted, 0)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes(self) -> int:
        """Estimated resident footprint of the memoised results."""
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._bytes = 0


_shared_cache: SharedPlanCache | None = None
_shared_cache_lock = threading.Lock()


def shared_plan_cache() -> SharedPlanCache:
    """The process-wide cache every :class:`QueryPlanner` defaults to."""
    global _shared_cache
    if _shared_cache is None:
        with _shared_cache_lock:
            if _shared_cache is None:
                _shared_cache = SharedPlanCache()
    return _shared_cache

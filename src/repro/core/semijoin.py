"""Semi-Join (paper §5.3, Definition 6) and its anti-join dual.

    "Operator Semi-Join G1 ⋉δ G2 produces a subgraph of G1 induced by the
    G1 links that match the links in G2.  [...] links to be joined are
    selected if they satisfy the directional condition δ.  [...]  As a
    special case, when G1 (G2) is a null graph (i.e., no links), we set
    d1 (resp., d2) to src."

The directional condition δ = (d1, d2) with d1, d2 ∈ {src, tgt} compares the
d1-endpoint of a G1 link against the d2-endpoint of G2 links; endpoints
match when the node ids are equal (§5.2: "nodes and links are matched on the
basis of their id").

Null-graph convention: a node selection produces a graph with nodes and no
links.  Following the paper's special case, a null graph participates in a
semi-join through its *nodes*, each treated as a degenerate link whose
``src`` (and only endpoint) is the node itself.  That is exactly what makes
Example 4's ``G ⋉(src,src) σN_id=101(G)`` mean "links of G whose source is
John".

:{func}:`anti_semi_join` keeps the non-matching links instead; with
``on='id'`` it matches links by id rather than by endpoint, which is the
reading of Lemma 1 we implement (see :mod:`repro.core.setops`).
"""

from __future__ import annotations

from typing import Iterable, Literal

from repro.core.graph import Id, Link, SocialContentGraph
from repro.errors import AlgebraError

Direction = Literal["src", "tgt"]
Delta = tuple[Direction, Direction]


def _check_delta(delta: Delta) -> Delta:
    d1, d2 = delta
    for d in (d1, d2):
        if d not in ("src", "tgt"):
            raise AlgebraError(f"direction must be 'src' or 'tgt', got {d!r}")
    return delta


def _match_values(graph: SocialContentGraph, direction: Direction) -> set[Id]:
    """Endpoint ids G2 exposes for matching under the special-case rule."""
    if graph.is_null_graph():
        # Nodes behave as degenerate links with src = the node itself.
        return graph.node_ids()
    return {link.endpoint(direction) for link in graph.links()}


def semi_join(
    g1: SocialContentGraph,
    g2: SocialContentGraph,
    delta: Delta = ("src", "src"),
) -> SocialContentGraph:
    """G1 ⋉δ G2 — Definition 6.

    Returns the subgraph of G1 induced by the G1 links ℓ for which some G2
    link ℓ2 satisfies ``ℓ.δd1 = ℓ2.δd2``.  When G2 is a null graph its
    nodes match directly; when G1 is a null graph, its *nodes* are filtered
    against G2's match values and a null graph is returned.
    """
    d1, d2 = _check_delta(delta)
    targets = _match_values(g2, d2)
    if g1.is_null_graph():
        return g1.null_graph(n for n in g1.nodes() if n.id in targets)
    keep = [link for link in g1.links() if link.endpoint(d1) in targets]
    return g1.subgraph_from_links(keep)


def anti_semi_join(
    g1: SocialContentGraph,
    g2: SocialContentGraph,
    delta: Delta = ("src", "src"),
    on: Literal["endpoint", "id"] = "endpoint",
) -> SocialContentGraph:
    """G1 ⋉̄δ G2 — keep the G1 links that do **not** match G2.

    ``on='endpoint'`` negates Definition 6's matching.  ``on='id'`` matches
    links by their id instead — the variant needed to express the
    Link-Driven Minus (Lemma 1): a G1 link survives iff no G2 link shares
    its id.
    """
    if on == "id":
        # Id-matching mode realises Definition 4's output shape: the result
        # is induced by the surviving links, so a null-graph G1 yields the
        # empty graph (no links ⇒ no induced nodes).
        g2_ids = g2.link_ids()
        keep = [link for link in g1.links() if link.id not in g2_ids]
        return g1.subgraph_from_links(keep)
    d1, d2 = _check_delta(delta)
    targets = _match_values(g2, d2)
    if g1.is_null_graph():
        return g1.null_graph(n for n in g1.nodes() if n.id not in targets)
    keep = [link for link in g1.links() if link.endpoint(d1) not in targets]
    return g1.subgraph_from_links(keep)

"""Unit tests for σN and σL (paper Definitions 1-2)."""

from __future__ import annotations

import pytest

from repro.core import (
    Condition,
    ConstantScorer,
    DefaultKeywordScorer,
    TfIdfScorer,
    select_links,
    select_nodes,
)


class TestNodeSelection:
    def test_outputs_null_graph(self, tiny_travel_graph):
        result = select_nodes(tiny_travel_graph, {"type": "user"})
        assert result.is_null_graph()
        assert result.node_ids() == {101, 102, 103, 104}

    def test_structural_filtering(self, tiny_travel_graph):
        result = select_nodes(tiny_travel_graph, {"type": "destination"})
        assert result.node_ids() == {"d1", "d2", "d3", "d4"}

    def test_id_selection(self, tiny_travel_graph):
        result = select_nodes(tiny_travel_graph, {"id": 101})
        assert result.node_ids() == {101}

    def test_keywords_scope_and_score(self, tiny_travel_graph):
        result = select_nodes(
            tiny_travel_graph, Condition({"type": "destination"}, keywords="baseball")
        )
        assert result.node_ids() == {"d1", "d2"}
        for node in result.nodes():
            assert node.score is not None and node.score > 0

    def test_no_keywords_no_score_attached(self, tiny_travel_graph):
        result = select_nodes(tiny_travel_graph, {"type": "user"})
        assert all(node.score is None for node in result.nodes())

    def test_explicit_scorer_without_keywords_scores(self, tiny_travel_graph):
        result = select_nodes(
            tiny_travel_graph, {"type": "user"}, scorer=ConstantScorer(0.25)
        )
        assert all(node.score == 0.25 for node in result.nodes())

    def test_input_graph_unchanged(self, tiny_travel_graph):
        before = tiny_travel_graph.copy()
        select_nodes(tiny_travel_graph, {"type": "user"},
                     scorer=ConstantScorer(9.0))
        assert tiny_travel_graph.same_as(before)

    def test_empty_result(self, tiny_travel_graph):
        result = select_nodes(tiny_travel_graph, {"type": "spaceship"})
        assert result.is_empty()


class TestLinkSelection:
    def test_outputs_link_induced_subgraph(self, tiny_travel_graph):
        result = select_links(tiny_travel_graph, {"type": "friend"})
        assert result.num_links == 3
        assert result.node_ids() == {101, 102, 103, 104}

    def test_structural_filtering(self, tiny_travel_graph):
        result = select_links(tiny_travel_graph, {"type": "visit"})
        assert result.num_links == 10
        assert all(l.has_type("visit") for l in result.links())

    def test_keyword_scope_on_links(self, tiny_travel_graph):
        g = tiny_travel_graph.copy()
        g.add_link(id="t1", src=101, tgt="d1", type="act, tag",
                   tags="rockies baseball")
        result = select_links(g, Condition({"type": "tag"}, keywords="rockies"))
        assert result.link_ids() == {"t1"}
        assert result.link("t1").score > 0

    def test_scores_only_on_links(self, tiny_travel_graph):
        g = tiny_travel_graph.copy()
        g.add_link(id="t1", src=101, tgt="d1", type="act, tag", tags="rockies")
        result = select_links(g, Condition({"type": "tag"}, keywords="rockies"))
        # endpoint nodes are carried but not scored
        assert all(node.score is None for node in result.nodes())


class TestScorers:
    def test_default_scorer_coverage_ordering(self):
        from repro.core import Node

        full = Node(1, type="item", text="denver baseball stadium")
        partial = Node(2, type="item", text="denver zoo")
        scorer = DefaultKeywordScorer()
        kw = ("denver", "baseball")
        assert scorer(full, kw) > scorer(partial, kw) > 0

    def test_default_scorer_zero_when_no_match(self):
        from repro.core import Node

        scorer = DefaultKeywordScorer()
        assert scorer(Node(1, type="item", text="paris"), ("denver",)) == 0.0

    def test_default_scorer_without_keywords_is_one(self):
        from repro.core import Node

        assert DefaultKeywordScorer()(Node(1, type="item"), ()) == 1.0

    def test_tfidf_rare_term_scores_higher(self, tiny_travel_graph):
        scorer = TfIdfScorer(tiny_travel_graph)
        d2 = tiny_travel_graph.node("d2")  # 'museum' appears once
        d3 = tiny_travel_graph.node("d3")  # 'family' appears twice
        assert scorer(d2, ("museum",)) > scorer(d3, ("family",)) > 0

    def test_tfidf_on_selection(self, tiny_travel_graph):
        scorer = TfIdfScorer(tiny_travel_graph)
        result = select_nodes(
            tiny_travel_graph,
            Condition({"type": "destination"}, keywords="baseball museum"),
            scorer=scorer,
        )
        # d2 mentions both terms, d1 only baseball.
        assert result.node("d2").score > result.node("d1").score

"""Tests for clustering strategies (Defs 11-13) and the clustered index."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import jaccard
from repro.indexing import (
    ClusteredIndex,
    ExactUserIndex,
    GlobalPopularityIndex,
    TaggingData,
    behavior_clustering,
    exact_clustering,
    hybrid_clustering,
    network_clustering,
    paper_scale_estimate,
    measured_report,
    SizingScenario,
)
from repro.workloads import TaggingSiteConfig, build_tagging_site


@pytest.fixture(scope="module")
def data():
    site = build_tagging_site(
        TaggingSiteConfig(num_users=80, num_items=160, num_tags=16, seed=5)
    )
    return TaggingData.from_graph(site.graph)


class TestClusterings:
    def test_network_clusters_partition(self, data):
        clustering = network_clustering(data, 0.3)
        assert clustering.is_partition_of(data.users)

    def test_behavior_clusters_partition(self, data):
        clustering = behavior_clustering(data, 0.3)
        assert clustering.is_partition_of(data.users)

    def test_hybrid_clusters_partition(self, data):
        clustering = hybrid_clustering(data, 0.2)
        assert clustering.is_partition_of(data.users)

    def test_theta_one_plus_degenerates_to_exact(self, data):
        clustering = network_clustering(data, 1.01)
        assert clustering.num_clusters == len(data.users)

    def test_theta_zero_merges_everyone(self, data):
        clustering = network_clustering(data, 0.0)
        assert clustering.num_clusters == 1

    def test_members_satisfy_predicate_with_leader(self, data):
        theta = 0.3
        clustering = network_clustering(data, theta)
        for cluster in clustering.clusters:
            leader = cluster[0]
            for member in cluster[1:]:
                assert jaccard(
                    data.network.get(member, set()),
                    data.network.get(leader, set()),
                ) >= theta

    def test_higher_theta_means_more_clusters(self, data):
        low = network_clustering(data, 0.1).num_clusters
        high = network_clustering(data, 0.6).num_clusters
        assert high >= low

    def test_exact_clustering(self, data):
        clustering = exact_clustering(data)
        assert clustering.num_clusters == len(data.users)
        assert clustering.is_partition_of(data.users)

    def test_hybrid_is_most_conservative(self, data):
        theta = 0.3
        hybrid = hybrid_clustering(data, theta).num_clusters
        behavior = behavior_clustering(data, theta).num_clusters
        assert hybrid >= behavior


class TestClusteredIndex:
    def test_smaller_than_exact(self, data):
        exact = ExactUserIndex(data).report()
        clustered = ClusteredIndex(data, network_clustering(data, 0.3)).report()
        assert clustered.entries < exact.entries
        assert clustered.lists < exact.lists

    def test_eq1_upper_bound_soundness(self, data):
        """Eq 1: stored bound >= exact score for every cluster member."""
        index = ClusteredIndex(data, network_clustering(data, 0.3))
        for (tag, cluster), entries in list(index.lists.items())[:40]:
            members = index.clustering.members(cluster)
            for item, bound in entries[:5]:
                for user in members:
                    assert bound >= data.score_tag(item, user, tag)

    def test_eq1_bound_is_tight(self, data):
        """The bound equals the max over members (not just any upper bound)."""
        index = ClusteredIndex(data, network_clustering(data, 0.3))
        checked = 0
        for (tag, cluster), entries in index.lists.items():
            members = index.clustering.members(cluster)
            for item, bound in entries[:2]:
                best = max(data.score_tag(item, u, tag) for u in members)
                assert bound == best
                checked += 1
            if checked > 30:
                break
        assert checked > 0

    def test_query_matches_brute_force_scores(self, data):
        index = ClusteredIndex(data, network_clustering(data, 0.3))
        rng = random.Random(4)
        for _ in range(25):
            user = rng.choice(data.users)
            kws = rng.sample(data.tag_vocab, k=2)
            bf = data.brute_force_topk(user, kws, 5)
            cl, stats = index.query(user, kws, 5)
            assert [s for _, s in cl] == [s for _, s in bf]
            for item, score in cl:
                assert data.score(item, user, kws) == score
            assert stats.exact_computations > 0 or not cl

    def test_exact_clustering_equals_exact_index_results(self, data):
        clustered = ClusteredIndex(data, exact_clustering(data))
        exact = ExactUserIndex(data)
        user = data.users[7]
        kws = data.tag_vocab[:2]
        a, _ = clustered.query(user, kws, 5)
        b, _ = exact.query(user, kws, 5)
        assert [s for _, s in a] == [s for _, s in b]

    def test_query_for_unknown_user(self, data):
        index = ClusteredIndex(data, network_clustering(data, 0.3))
        result, _ = index.query("nobody", data.tag_vocab[:2], 5)
        assert result == []

    def test_clustered_does_more_exact_work_than_exact_index(self, data):
        """The paper's stated trade-off: bounds save space but cost
        exact-score computations at query time."""
        exact = ExactUserIndex(data)
        clustered = ClusteredIndex(data, network_clustering(data, 0.2))
        rng = random.Random(6)
        exact_work = clustered_work = 0
        for _ in range(20):
            user = rng.choice(data.users)
            kws = rng.sample(data.tag_vocab, k=2)
            _, s1 = exact.query(user, kws, 5)
            _, s2 = clustered.query(user, kws, 5)
            exact_work += s1.exact_computations
            clustered_work += s2.exact_computations
        assert clustered_work >= exact_work


class TestSizing:
    def test_paper_estimate_is_one_terabyte(self):
        estimate = paper_scale_estimate()
        assert estimate.terabytes == pytest.approx(1.0)
        assert estimate.entries == pytest.approx(1e11)

    def test_scaled_scenario(self):
        small = paper_scale_estimate(SizingScenario(
            num_users=1000, num_items=10_000, tags_per_item=20,
            tagger_fraction=0.05,
        ))
        assert small.entries == pytest.approx(10_000 * 20 * 50)

    def test_measured_report_orders_strategies(self, data):
        clusterings = {
            "network": network_clustering(data, 0.3),
            "behavior": behavior_clustering(data, 0.3),
        }
        sizes = measured_report(data, clusterings)
        assert sizes.exact_entries >= sizes.clustered["network"][0]
        assert sizes.exact_entries >= sizes.clustered["behavior"][0]
        assert sizes.compression("network") >= 1.0

    def test_global_index_is_smallest(self, data):
        sizes = measured_report(data, {})
        assert sizes.global_entries <= sizes.exact_entries

"""Crash-recovery properties: recover(snapshot + WAL tail) ≡ the live site.

Hypothesis drives random activity histories — interleaved upserts and
deletes, a checkpoint somewhere in the middle, more activity, then a
simulated crash (optionally tearing the final WAL record) — and asserts
the recovered store is indistinguishable from the live one: same graph,
same provenance, and *bit-identical rankings* (1e-9) through every social
strategy.  Replay idempotency rides along: recovering the same directory
twice, or re-replaying an already-applied tail, changes nothing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import SearchRequest, Session
from repro.core import Link, Node
from repro.management import DataManager
from repro.management.wal import list_segments, segment_name

STRATEGIES = ("friends", "similar_users", "item_based")

#: one random activity op: (kind, index)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["user", "item", "visit", "friend", "del_visit"]),
        st.integers(min_value=0, max_value=11),
    ),
    min_size=0,
    max_size=12,
)


def _base_site(dm: DataManager) -> None:
    """A small always-present social core every random history extends."""
    for u in range(4):
        dm.add_node(Node(f"u{u}", type="user", name=f"user {u}"))
    for i in range(5):
        dm.add_node(Node(f"i{i}", type="item", name=f"item {i}",
                         keywords=f"travel topic{i % 2}"))
    for u in range(4):
        dm.add_link(Link(f"f{u}", f"u{u}", f"u{(u + 1) % 4}",
                         type="connect, friend"))
        dm.add_link(Link(f"a{u}", f"u{u}", f"i{u % 5}", type="act, visit"))


def _apply(dm: DataManager, ops) -> None:
    """Replay one random history (idempotent upserts, tolerant deletes)."""
    for kind, index in ops:
        if kind == "user":
            dm.add_node(Node(f"xu{index}", type="user",
                             name=f"extra user {index}"))
        elif kind == "item":
            dm.add_node(Node(f"xi{index}", type="item",
                             name=f"extra item {index}",
                             keywords=f"travel extra{index % 3}"))
        elif kind == "visit":
            src, tgt = f"u{index % 4}", f"i{index % 5}"
            dm.add_link(Link(f"xv{index}", src, tgt, type="act, visit"))
        elif kind == "friend":
            src, tgt = f"u{index % 4}", f"u{(index + 1) % 4}"
            if src != tgt:
                dm.add_link(Link(f"xf{index}", src, tgt,
                                 type="connect, friend"))
        elif kind == "del_visit":
            try:
                dm.delete_link(f"xv{index}")
            except Exception:
                pass  # never added (or already deleted) in this history


def _rankings(dm: DataManager):
    """Full per-strategy score decompositions through a fresh session."""
    session = Session(dm)
    out = {}
    for strategy in STRATEGIES:
        response = session.run(SearchRequest(
            user_id="u0", text="travel", strategy=strategy, page_size=50,
        ))
        msg = session.discover(SearchRequest(
            user_id="u0", text="travel", strategy=strategy, page_size=50,
        ))
        out[strategy] = (
            response.items,
            [(s.item_id, s.semantic, s.social, s.combined)
             for s in msg.items],
        )
    return out


def _assert_parity(live, recovered, tol=1e-9):
    for strategy in STRATEGIES:
        live_items, live_scores = live[strategy]
        rec_items, rec_scores = recovered[strategy]
        assert rec_items == live_items, strategy
        assert len(rec_scores) == len(live_scores), strategy
        for (lid, *lvals), (rid, *rvals) in zip(live_scores, rec_scores):
            assert lid == rid, strategy
            for lv, rv in zip(lvals, rvals):
                assert abs(lv - rv) <= tol, (strategy, lid, lv, rv)


@pytest.mark.parametrize("shards", [1, 2, 7])
@given(before=_ops, after=_ops, tear=st.booleans())
@settings(max_examples=12, deadline=None)
def test_recovery_matches_live_site(tmp_path_factory, shards, before,
                                    after, tear):
    site = tmp_path_factory.mktemp("site")
    dm = DataManager(shards=shards)
    _base_site(dm)
    _apply(dm, before)
    dm.enable_wal(site / "wal")
    dm.checkpoint(site)
    _apply(dm, after)
    dm.wal.sync()
    if tear:
        # crash mid-append: a partial frame lands after the real tail
        # (or, with no post-checkpoint activity, as a fresh segment the
        # crashed process had just opened)
        segments = list_segments(site / "wal")
        target = (segments[-1] if segments
                  else site / "wal" / segment_name(dm.applied_seq + 1))
        with open(target, "a") as handle:
            handle.write('f00dface {"seq": 100000, "op": "nod')

    recovered, report = DataManager.recover(site)
    assert report.tail_truncated == tear
    assert recovered.graph().same_as(dm.graph())
    assert recovered.provenance_summary() == dm.provenance_summary()
    assert recovered.num_shards == shards
    _assert_parity(_rankings(dm), _rankings(recovered))

    # idempotency: recovering the same directory again changes nothing
    # (the truncated tail stays truncated, the watermark skips replay
    # of everything the first recovery already applied)
    again, report2 = DataManager.recover(site, resume_wal=False)
    assert not report2.tail_truncated
    assert report2.replayed == report.replayed
    assert again.graph().same_as(recovered.graph())


@given(ops=_ops)
@settings(max_examples=10, deadline=None)
def test_checkpoint_of_recovered_site_round_trips(tmp_path_factory, ops):
    """recover → checkpoint → recover is a fixed point."""
    site = tmp_path_factory.mktemp("site")
    dm = DataManager(shards=2)
    _base_site(dm)
    dm.enable_wal(site / "wal")
    dm.checkpoint(site)
    _apply(dm, ops)
    dm.wal.sync()

    first, _ = DataManager.recover(site)
    first.checkpoint(site)
    second, report = DataManager.recover(site)
    assert report.replayed == 0
    assert second.graph().same_as(first.graph())
    assert second.graph().same_as(dm.graph())

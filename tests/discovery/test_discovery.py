"""Tests for relevance, connection selection, strategies, and the MSG."""

from __future__ import annotations

import pytest

from repro.discovery import (
    ConnectionSelector,
    DiscoveryConfig,
    FriendBasedStrategy,
    InformationDiscoverer,
    ItemBasedStrategy,
    SemanticRelevance,
    SimilarUserStrategy,
    find_experts,
    parse_query,
)
from repro.errors import DiscoveryError
from repro.workloads import (
    ALEXIA,
    JOHN,
    SELMA,
    TravelSiteConfig,
    build_travel_site,
)


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture(scope="module")
def discoverer(travel):
    return InformationDiscoverer(travel.graph)


class TestSemanticRelevance:
    def test_scoping_by_keywords(self, travel):
        semantic = SemanticRelevance(travel.graph)
        result = semantic.candidates(parse_query(JOHN, "Denver baseball"))
        assert result.scores
        for item in result.scores:
            text = travel.graph.node(item).text().lower()
            assert "denver" in text or "baseball" in text

    def test_normalisation(self, travel):
        semantic = SemanticRelevance(travel.graph)
        result = semantic.candidates(parse_query(JOHN, "Denver"))
        normalized = result.normalized()
        assert max(normalized.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in normalized.values())

    def test_empty_query_returns_all_items_unscored(self, travel):
        semantic = SemanticRelevance(travel.graph)
        result = semantic.candidates(parse_query(JOHN, ""))
        assert set(result.scores) == {
            n.id for n in travel.graph.nodes_of_type("item")
        }
        assert result.max_score == 0.0


class TestConnectionSelector:
    def test_john_baseball_friends_qualify(self, travel):
        selector = ConnectionSelector(travel.graph)
        selection = selector.select(JOHN, ("baseball",))
        assert not selection.used_expert_fallback
        assert selection.friends

    def test_selma_family_query_triggers_fallback(self, travel):
        # Most of Selma's friends are musicians; with a strict fit cut the
        # parent friends remain or experts kick in — either way the family
        # signal must come from family-active users.
        selector = ConnectionSelector(travel.graph, min_fit=0.6,
                                      min_qualified=8)
        selection = selector.select(SELMA, ("family", "babies"))
        assert selection.used_expert_fallback
        assert selection.experts

    def test_experts_act_on_matching_items(self, travel):
        experts = find_experts(travel.graph, {"family"}, limit=5)
        assert experts
        for expert in experts:
            acted = [
                travel.graph.node(l.tgt).value("category")
                for l in travel.graph.out_links(expert)
                if l.has_type("act")
            ]
            assert "family" in acted

    def test_no_keywords_keeps_all_friends(self, travel):
        selector = ConnectionSelector(travel.graph)
        selection = selector.select(JOHN, ())
        assert selection.friends == selector.friends_of(JOHN)


class TestStrategies:
    def test_friend_strategy_scores_endorsed_items(self, travel):
        selector = ConnectionSelector(travel.graph)
        selection = selector.select(JOHN, ("baseball",))
        strategy = FriendBasedStrategy()
        candidates = {n.id for n in travel.graph.nodes_of_type("item")}
        scores = strategy.score(travel.graph, JOHN, candidates, selection)
        assert scores.scores
        # provenance is recorded for every scored item
        for item in scores.scores:
            assert scores.endorsers.get(item)

    def test_similar_user_strategy_matches_recipe(self, travel):
        from repro.core import (
            example5_collaborative_filtering,
            recommendations_from,
        )

        strategy = SimilarUserStrategy(sim_threshold=0.1)
        candidates = {n.id for n in travel.graph.nodes_of_type("item")}
        scores = strategy.score(travel.graph, JOHN, candidates, None)
        recipe = dict(
            recommendations_from(
                example5_collaborative_filtering(
                    travel.graph, JOHN, dest_type="item", sim_threshold=0.1
                ),
                JOHN,
            )
        )
        assert scores.scores == pytest.approx(recipe)

    def test_item_based_needs_derived_links(self, travel):
        from repro.analysis import item_similarity_links
        from repro.core import union

        strategy = ItemBasedStrategy()
        candidates = {n.id for n in travel.graph.nodes_of_type("item")}
        bare = strategy.score(travel.graph, JOHN, candidates, None)
        assert bare.scores == {}
        enriched = union(
            travel.graph, item_similarity_links(travel.graph, threshold=0.15)
        )
        derived = strategy.score(enriched, JOHN, candidates, None)
        assert derived.scores
        for item in derived.scores:
            assert derived.supporting_items.get(item)


class TestDiscoverer:
    def test_msg_contains_user_items_endorsers(self, discoverer, travel):
        msg = discoverer.discover(JOHN, "Denver attractions")
        assert msg.graph.has_node(JOHN)
        assert msg.items
        top = msg.items[0]
        assert msg.graph.node(top.item_id).value("score") is not None
        endorsers = msg.endorsers_of(top.item_id)
        assert endorsers  # social provenance present

    def test_john_gets_baseball_first(self, discoverer, travel):
        # Example 1: semantic relevance alone can't rank Denver attractions;
        # John's baseball history must put ballparks on top.
        msg = discoverer.discover(JOHN, "Denver attractions")
        top_categories = [
            travel.graph.node(s.item_id).value("category")
            for s in msg.items[:3]
        ]
        assert "baseball" in top_categories

    def test_empty_query_is_social_only(self, discoverer):
        msg = discoverer.discover(JOHN, "")
        assert msg.items
        for scored in msg.items:
            assert scored.combined == pytest.approx(scored.social)

    def test_k_limits_results(self, discoverer):
        msg = discoverer.discover(JOHN, "attractions", k=3)
        assert len(msg.items) <= 3

    def test_scores_sorted_descending(self, discoverer):
        msg = discoverer.discover(JOHN, "Denver attractions")
        combined = [s.combined for s in msg.items]
        assert combined == sorted(combined, reverse=True)

    def test_unknown_strategy_raises(self, discoverer):
        with pytest.raises(DiscoveryError):
            discoverer.discover(JOHN, "x", strategy="tarot")

    def test_selma_family_results_via_experts_or_parents(self, discoverer,
                                                         travel):
        msg = discoverer.discover(SELMA, "Barcelona family trip with babies")
        assert msg.items
        top_ids = [s.item_id for s in msg.items[:5]]
        barcelona_family = [
            i for i in top_ids
            if "barcelona" in str(i) and
            travel.graph.node(i).value("category") == "family"
        ]
        assert barcelona_family, f"expected Barcelona family items in {top_ids}"

    def test_alexia_has_two_endorser_communities(self, discoverer, travel):
        msg = discoverer.discover(ALEXIA, "history")
        endorsers = set()
        for scored in msg.items:
            endorsers |= set(msg.endorsers_of(scored.item_id))
        classmates = {
            l.src for l in travel.graph.in_links("grp:history-class")
            if l.has_type("member")
        } - {ALEXIA}
        assert endorsers & classmates

"""Serving metrics: latency percentiles and process memory high-water.

The load harness and the bench gate both consume these, so the math lives
in one place: percentiles are computed with linear interpolation over the
sorted sample (the common "type 7" estimator), and peak RSS comes from
``resource.getrusage`` — the kernel's high-water mark for the whole
process, which is exactly the "did serving blow the memory budget"
number a closed-loop run wants to report.
"""

from __future__ import annotations

import resource
import sys
from typing import Mapping, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) of *samples*, linearly interpolated.

    An empty sample set yields 0.0 — the harness reports "no latency
    observed" rather than raising mid-run.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def latency_summary(samples_ms: Sequence[float]) -> dict[str, float]:
    """The p50/p95/p99 + mean/max digest every serving report carries."""
    if not samples_ms:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "p50": percentile(samples_ms, 50.0),
        "p95": percentile(samples_ms, 95.0),
        "p99": percentile(samples_ms, 99.0),
        "mean": sum(samples_ms) / len(samples_ms),
        "max": max(samples_ms),
    }


def peak_rss_mb() -> float:
    """The process's peak resident set size in MiB.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalise so
    the bench baselines are comparable across both.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def histogram_mean(histogram: Mapping[int, int]) -> float:
    """Mean of a ``value -> count`` histogram (0.0 when empty)."""
    total = sum(histogram.values())
    if not total:
        return 0.0
    return sum(value * count for value, count in histogram.items()) / total


__all__ = [
    "percentile",
    "latency_summary",
    "peak_rss_mb",
    "histogram_mean",
]

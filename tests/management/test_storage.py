"""Tests for the physical GraphStore and DataManager."""

from __future__ import annotations

import pytest

from repro.core import Link, Node
from repro.errors import DanglingLinkError, ManagementError, UnknownNodeError
from repro.management import DataManager, GraphStore, LOCAL, DERIVED


@pytest.fixture
def store():
    s = GraphStore(indexed_attributes=("name",))
    s.upsert_node(Node(1, type="user", name="John"))
    s.upsert_node(Node(2, type="user", name="Ann"))
    s.upsert_node(Node("d1", type="item, destination", name="Coors Field"))
    s.upsert_link(Link("v1", 1, "d1", type="act, visit"))
    s.upsert_link(Link("f1", 1, 2, type="connect, friend"))
    return s


class TestGraphStore:
    def test_primary_key_access(self, store):
        assert store.node(1).value("name") == "John"
        assert store.link("v1").tgt == "d1"

    def test_type_index(self, store):
        users = [n.id for n in store.nodes_of_type("user")]
        assert users == [1, 2]
        visits = [l.id for l in store.links_of_type("visit")]
        assert visits == ["v1"]

    def test_attribute_index(self, store):
        found = [n.id for n in store.find_nodes("name", "Coors Field")]
        assert found == ["d1"]

    def test_unindexed_attribute_rejected(self, store):
        with pytest.raises(ManagementError):
            list(store.find_nodes("keywords", "x"))

    def test_upsert_replaces_and_reindexes(self, store):
        store.upsert_node(Node(1, type="user, vip", name="Johnny"))
        assert store.node(1).value("name") == "Johnny"
        assert [n.id for n in store.find_nodes("name", "John")] == []
        assert [n.id for n in store.find_nodes("name", "Johnny")] == [1]
        assert 1 in {n.id for n in store.nodes_of_type("vip")}

    def test_dangling_link_rejected(self, store):
        with pytest.raises(DanglingLinkError):
            store.upsert_link(Link("bad", 1, "missing", type="visit"))

    def test_upsert_link_cannot_move(self, store):
        with pytest.raises(ManagementError):
            store.upsert_link(Link("v1", 2, "d1", type="visit"))

    def test_delete_node_cascades(self, store):
        store.delete_node(1)
        assert not store.has_node(1)
        assert not store.has_link("v1")
        assert not store.has_link("f1")
        assert store.has_node(2)

    def test_delete_unknown(self, store):
        with pytest.raises(UnknownNodeError):
            store.delete_node(999)

    def test_adjacency(self, store):
        assert {l.id for l in store.out_links(1)} == {"v1", "f1"}
        assert {l.id for l in store.in_links("d1")} == {"v1"}

    def test_snapshot_round_trip(self, store):
        graph = store.snapshot()
        assert graph.num_nodes == store.num_nodes
        assert graph.num_links == store.num_links
        assert graph.node(1) == store.node(1)

    def test_provenance(self, store):
        store.upsert_node(Node(3, type="user", name="Ext"), origin="facebook")
        assert store.origin_of("node", 3) == "facebook"
        assert store.origin_of("node", 1) == LOCAL
        nodes, _ = store.records_from("facebook")
        assert nodes == {3}

    def test_stats_maintained(self, store):
        stats = store.graph_stats()
        assert stats.num_nodes == 3
        assert stats.node_types["user"] == 2
        assert stats.link_types["visit"] == 1
        store.delete_link("v1")
        assert store.graph_stats().link_types["visit"] == 0


class TestDataManager:
    def test_load_and_snapshot_cache(self, tiny_travel_graph):
        dm = DataManager()
        dm.load_graph(tiny_travel_graph)
        g1 = dm.graph()
        g2 = dm.graph()
        assert g1 is g2  # cached until next write
        dm.add_node(Node(999, type="user", name="new"))
        g3 = dm.graph()
        assert g3 is not g1
        assert g3.has_node(999)

    def test_merge_derived_provenance(self, tiny_travel_graph):
        from repro.analysis import user_similarity_links

        dm = DataManager()
        dm.load_graph(tiny_travel_graph)
        derived = user_similarity_links(tiny_travel_graph, threshold=0.6)
        dm.merge_derived(derived)
        summary = dm.provenance_summary()
        assert DERIVED in summary
        assert summary[DERIVED][1] > 0  # derived links recorded

    def test_statistics_flow_to_optimizer(self, tiny_travel_graph):
        dm = DataManager()
        dm.load_graph(tiny_travel_graph)
        stats = dm.statistics()
        assert stats.num_nodes == tiny_travel_graph.num_nodes
        assert stats.link_types["visit"] == 10

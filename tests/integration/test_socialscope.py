"""End-to-end integration tests: the three personas through the facade.

These reproduce the paper's motivating Examples 1-3 (§2.1) against the
synthetic Y!Travel site, exercising all three layers together.
"""

from __future__ import annotations

import pytest

from repro import SocialScope
from repro.socialscope import SocialScopeConfig
from repro.workloads import (
    ALEXIA,
    JOHN,
    SELMA,
    TravelSiteConfig,
    build_travel_site,
)


@pytest.fixture(scope="module")
def travel():
    return build_travel_site(TravelSiteConfig(seed=42))


@pytest.fixture(scope="module")
def scope(travel):
    return SocialScope.from_graph(travel.graph)


class TestExample1John:
    """'Denver attractions' must surface baseball venues for John."""

    def test_baseball_surfaces_on_top(self, scope, travel):
        page = scope.search(JOHN, "Denver attractions")
        assert page.flat
        top_categories = [
            travel.graph.node(e.item_id).value("category")
            for e in page.flat[:3]
            if travel.graph.has_node(e.item_id)
        ]
        assert "baseball" in top_categories

    def test_results_are_denver_scoped(self, scope, travel):
        page = scope.search(JOHN, "Denver attractions")
        for entry in page.flat:
            text = travel.graph.node(entry.item_id).text().lower()
            assert "denver" in text or "attraction" in text

    def test_explanations_cite_endorsers(self, scope):
        page = scope.search(JOHN, "Denver attractions")
        explained = [
            e for g in page.groups for e in g.entries
            if not e.explanation.is_empty
        ]
        assert explained


class TestExample2Selma:
    """Family Barcelona trip: parent friends / experts, not musicians."""

    def test_barcelona_family_results(self, scope, travel):
        page = scope.search(SELMA, "Barcelona family trip with babies")
        assert page.flat
        names = [e.name for e in page.flat[:5]]
        assert any("Family" in n and "Barcelona" in n for n in names)


class TestExample3Alexia:
    """'history' results grouped by endorsing community."""

    def test_grouped_by_endorser_communities(self, scope):
        page = scope.search(ALEXIA, "history")
        assert page.chosen_dimension == "endorser"
        labels = {g.label for g in page.groups}
        assert any("history class" in label for label in labels)
        assert any("soccer team" in label for label in labels)

    def test_zoomable_exploration(self, scope):
        presenter = scope.explore(ALEXIA, "history")
        target = max(presenter.groups, key=lambda g: g.size)
        frame = presenter.zoom_in(target.label)
        assert frame.grouping.groups


class TestRecommendationMode:
    def test_empty_query_recommends_socially(self, scope, travel):
        page = scope.recommend(JOHN, k=5)
        assert page.flat
        categories = {
            travel.graph.node(e.item_id).value("category")
            for e in page.flat
            if travel.graph.has_node(e.item_id)
        }
        assert "baseball" in categories  # John's social circle is baseball


class TestAnalysisIntegration:
    def test_analyze_enriches_discovery(self, travel):
        scope = SocialScope.from_graph(travel.graph)
        before = scope.graph.num_links
        scope.analyze("user_similarity")
        assert scope.graph.num_links > before
        # discovery still works over the enriched graph
        page = scope.search(JOHN, "Denver attractions")
        assert page.flat

    def test_auto_analyses_config(self, travel):
        scope = SocialScope.from_graph(
            travel.graph,
            SocialScopeConfig(auto_analyses=("item_similarity",)),
        )
        assert any(l.has_type("sim_item") for l in scope.graph.links())


class TestRemoteIntegration:
    def test_attach_remote_expands_graph(self, travel):
        from repro.management import ALL_SCOPES, RemoteSocialSite

        scope = SocialScope.from_graph(travel.graph)
        remote = RemoteSocialSite("facebook-sim")
        remote.register_user("fb:1", "Remote Rita")
        remote.register_user(JOHN, "John")
        remote.connect("fb:1", JOHN)
        for user in ("fb:1", JOHN):
            remote.grant(user, "socialscope", set(ALL_SCOPES))
        before = scope.graph.num_nodes
        scope.attach_remote(remote)
        assert scope.graph.num_nodes > before
        assert scope.graph.has_node("fb:1")


class TestStrategySwitch:
    def test_similar_users_strategy_end_to_end(self, scope):
        page = scope.search(JOHN, "attractions", strategy="similar_users")
        assert page.flat

    def test_item_based_after_analysis(self, travel):
        scope = SocialScope.from_graph(
            travel.graph,
            SocialScopeConfig(auto_analyses=("item_similarity",)),
        )
        page = scope.search(JOHN, "attractions", strategy="item_based")
        assert page is not None  # may be empty but must not crash

"""Property: the optimizer never changes what a plan computes.

For randomized graphs and randomly composed ``Expr`` trees,
``optimize(e)`` must evaluate graph-equal to ``e`` — the guard every
rewrite rule the compiler adds has to clear.  The tree strategy
deliberately draws the shapes the rules fire on: stacked selections
(fusion), selections over semi-joins (pushdown), link-minus (Lemma 1),
set operations over a *shared* subtree object (idempotence), and empty
literals spliced into branches (empty propagation).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Condition, SocialContentGraph, input_graph, literal, optimize
from repro.core.expr import Expr
from tests.conftest import social_graphs

FAST = settings(max_examples=60, deadline=None)

#: Condition pool: structural, comparison, keyword-scoped, and empty.
CONDITIONS = st.sampled_from([
    None,
    {"type": "user"},
    {"type": "item"},
    {"rating__ge": 2},
    {"rating__le": 4},
    {"weight__gt": 0.5},
    Condition({"type": "item"}, keywords="alpha beta"),
    Condition(keywords="gamma"),
])

DELTAS = st.sampled_from([("src", "src"), ("src", "tgt"),
                          ("tgt", "src"), ("tgt", "tgt")])


@st.composite
def expr_trees(draw, depth: int = 3) -> Expr:
    """A random plan over input graph ``G`` (plus occasional literals)."""
    if depth <= 0 or draw(st.integers(0, 4)) == 0:
        leaf = draw(st.integers(0, 5))
        if leaf == 0:
            return literal(SocialContentGraph())  # exercises propagate_empty
        return input_graph("G")
    shape = draw(st.integers(0, 9))
    if shape <= 1:
        return draw(expr_trees(depth=depth - 1)).select_nodes(draw(CONDITIONS))
    if shape <= 3:
        return draw(expr_trees(depth=depth - 1)).select_links(draw(CONDITIONS))
    left = draw(expr_trees(depth=depth - 1))
    #: sharing the same subtree object is how real plans trigger the
    #: idempotence rewrites (same_expr detects object-identical params)
    right = left if draw(st.booleans()) else draw(expr_trees(depth=depth - 1))
    if shape == 4:
        return left.union(right)
    if shape == 5:
        return left.intersect(right)
    if shape == 6:
        return left.minus(right)
    if shape == 7:
        return left.link_minus(right)  # Lemma 1 rewrite target
    if shape == 8:
        return left.semi_join(right, draw(DELTAS))
    return left.anti_semi_join(right, draw(DELTAS),
                               on=draw(st.sampled_from(["endpoint", "id"])))


class TestOptimizeEquivalence:
    @given(g=social_graphs(), e=expr_trees())
    @FAST
    def test_optimized_plan_is_graph_equal(self, g, e):
        env = {"G": g}
        optimized, _report = optimize(e)
        assert optimized.evaluate(env).same_as(e.evaluate(env))

    @given(g=social_graphs(), e=expr_trees())
    @FAST
    def test_optimize_is_idempotent_on_results(self, g, e):
        env = {"G": g}
        once, _ = optimize(e)
        twice, _ = optimize(once)
        assert twice.evaluate(env).same_as(once.evaluate(env))

    @given(g=social_graphs(), e=expr_trees())
    @FAST
    def test_optimizer_never_mutates_the_input_plan(self, g, e):
        env = {"G": g}
        before = e.evaluate(env)
        optimize(e)
        assert e.evaluate(env).same_as(before)

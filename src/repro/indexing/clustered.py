"""Cluster-level inverted index with score upper bounds (paper §6.2, Eq 1).

    "Given a cluster C, the score of an item i in an index IL^C_k is
    computed as the upper-bound of scores of i for each user u ∈ C:
    score_k(i, C) = max_{u∈C} score_k(i, u).   (1)

    By storing score upper-bounds, top-k pruning algorithms can still be
    used.  However, score upper-bounds entail having to compute exact
    scores at query time for a specific user."

One inverted list per (tag, cluster) instead of per (tag, user): smaller
index, at the price of exact-score computation for every candidate the
upper-bound lists surface.  Query processing is a TA variant whose sorted
access reads upper bounds and whose "random access" computes the exact
user-specific score — exactly the overhead the paper describes, surfaced in
:class:`~repro.indexing.topk.QueryStats.exact_computations`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.core import Id
from repro.indexing.clustering import Clustering
from repro.indexing.inverted import ENTRY_BYTES, IndexReport
from repro.indexing.scores import ScoreF, ScoreG, TaggingData, f_count, g_sum
from repro.indexing.topk import QueryStats


class ClusteredIndex:
    """Per-(tag, cluster) inverted lists storing Eq 1 upper bounds."""

    def __init__(
        self,
        data: TaggingData,
        clustering: Clustering,
        f: ScoreF = f_count,
        g: ScoreG = g_sum,
    ):
        self.data = data
        self.clustering = clustering
        self.f = f
        self.g = g
        self.lists: dict[tuple[str, int], list[tuple[Id, float]]] = {}
        self._build()

    def _build(self) -> None:
        # Same inversion as the exact index, but scores max-merge into the
        # user's cluster list instead of the user's own list.
        accumulator: dict[tuple[str, int], dict[Id, float]] = {}
        for (item, tag), taggers in self.data.taggers.items():
            reached: dict[Id, set] = {}
            for tagger in taggers:
                for user in self.data.network.get(tagger, ()):
                    reached.setdefault(user, set()).add(tagger)
            for user, endorsers in reached.items():
                cluster = self.clustering.cluster_of.get(user)
                if cluster is None:
                    continue
                score = self.f(endorsers)
                bucket = accumulator.setdefault((tag, cluster), {})
                if score > bucket.get(item, 0.0):
                    bucket[item] = score
        for key, per_item in accumulator.items():
            self.lists[key] = sorted(
                per_item.items(), key=lambda kv: (-kv[1], repr(kv[0]))
            )

    # -- size -------------------------------------------------------------------

    def report(self) -> IndexReport:
        """Entry/list counts (bytes = entries x 10, as in the paper)."""
        return IndexReport(
            entries=sum(len(v) for v in self.lists.values()),
            lists=len(self.lists),
        )

    # -- invariants ----------------------------------------------------------------

    def upper_bound(self, item: Id, tag: str, user: Id) -> float:
        """The stored bound for (item, tag) in *user*'s cluster (0 if absent)."""
        cluster = self.clustering.cluster_of.get(user)
        if cluster is None:
            return 0.0
        for entry_item, score in self.lists.get((tag, cluster), ()):
            if entry_item == item:
                return score
        return 0.0

    # -- querying -------------------------------------------------------------------

    def query(
        self, user: Id, keywords: Sequence[str], k: int
    ) -> tuple[list[tuple[Id, float]], QueryStats]:
        """Top-k for *user*: upper-bound TA + exact rescoring.

        Sorted access walks the user's cluster lists (upper bounds, sorted
        descending).  Every new candidate's **exact** score is computed
        from ``network(u) ∩ taggers(i, k)`` — the paper's query-time
        overhead.  Termination: the k-th exact score is ≥ the upper-bound
        threshold of everything not yet seen, which is sound because
        Eq 1 guarantees bound ≥ exact for every cluster member.
        """
        stats = QueryStats()
        cluster = self.clustering.cluster_of.get(user)
        if cluster is None:
            return [], stats
        lists = [self.lists.get((kw, cluster), []) for kw in keywords]
        n_lists = len(lists)
        if n_lists == 0:
            return [], stats
        positions = [0] * n_lists
        last_seen = [0.0] * n_lists
        exhausted = [len(entries) == 0 for entries in lists]
        exact: dict[Id, float] = {}
        heap: list[tuple[float, str]] = []

        while not all(exhausted):
            for li in range(n_lists):
                if exhausted[li]:
                    last_seen[li] = 0.0
                    continue
                item, bound = lists[li][positions[li]]
                stats.sorted_accesses += 1
                positions[li] += 1
                if positions[li] >= len(lists[li]):
                    exhausted[li] = True
                last_seen[li] = bound
                if item in exact:
                    continue
                score = self.data.score(item, user, keywords, self.f, self.g)
                stats.exact_computations += 1
                exact[item] = score
                if score > 0:
                    heapq.heappush(heap, (score, repr(item)))
                    if len(heap) > k:
                        heapq.heappop(heap)
            threshold = self.g(last_seen)
            if len(heap) == k and heap and heap[0][0] >= threshold:
                break
        stats.candidates = len(exact)
        ranked = sorted(
            ((i, s) for i, s in exact.items() if s > 0),
            key=lambda kv: (-kv[1], repr(kv[0])),
        )
        return ranked[:k], stats
